open Ast

type policy = First | Random of int
type stats = { gamma_steps : int; candidates_examined : int }

exception Unsupported of string

(* ------------------------------------------------------------------ *)
(* Compiled choice rules                                               *)
(* ------------------------------------------------------------------ *)

type extremum = { minimize : bool; key : term; cost : term }

(* Choice-goal terms resolved against the V layout of chosen$i rows:
   variables become row positions, so FD replay does no per-row name
   lookup. *)
type vterm =
  | VPos of int
  | VCst of Value.t
  | VCmp of string * vterm list
  | VBinop of binop * vterm * vterm

type crule = {
  ridx : int;  (* index of chosen$ridx, matching Rewrite.expand_choice *)
  label : string;  (* telemetry row of the original rule *)
  head : atom;
  vars : string list;  (* V: argument layout of chosen$ridx *)
  out_terms : term list;
  fds : (term list * term list) list;
  body : Eval.body;
  extrema : extremum list;
  stage : (string * int) option;  (* next rules: stage var and head position *)
  (* Hot-path forms, resolved once at compile time. *)
  c_out : Eval.cterm array;  (* [out_terms] against [body] *)
  c_fds : (Eval.cterm list * Eval.cterm list) list;  (* [fds] against [body] *)
  c_ext : (Eval.cterm * Eval.cterm) array;  (* (key, cost) per extremum *)
  c_min : bool array;  (* minimize flag per extremum *)
  v_fds : (vterm list * vterm list) list;  (* [fds] against the V layout *)
  (* Per-shard scratch for data-parallel candidate collection: one
     cloned body and private environment per shard, grown lazily. *)
  mutable c_scratch : (Eval.body * Eval.env) array;
  (* Compiled execution: the body's closure chain plus V/FD/extrema
     evaluators over its unboxed environment ([None] when running
     interpreted). *)
  cc : ccompiled option;
}

and ccompiled = {
  cc_chain : Compile.t;
  cc_out : Compile.value_prog array;
  cc_fds : (Compile.value_prog list * Compile.value_prog list) list;
  cc_ext : (Compile.value_prog * Compile.value_prog) array;
  mutable cc_scratch : Compile.t array;
}

let is_choice_rule r = has_next r || has_choice r

let stage_of_rule (r : Ast.rule) =
  match List.find_map (function Next v -> Some v | _ -> None) r.body with
  | None -> None
  | Some v ->
    let rec find i = function
      | [] ->
        raise
          (Unsupported
             (Printf.sprintf "stage variable %s of '%s' does not appear in the head" v
                (Pretty.rule_to_string r)))
      | Var x :: _ when String.equal x v -> i
      | _ :: rest -> find (i + 1) rest
    in
    Some (v, find 0 r.head.args)

let flat_literals (r : Ast.rule) =
  List.filter
    (function
      | Next _ | Choice _ | Least _ | Most _ -> false
      | Agg _ ->
        raise
          (Unsupported
             ("aggregate goal in a choice rule: " ^ Pretty.rule_to_string r))
      | Pos _ | Neg _ | Rel _ -> true)
    r.body

let extrema_of (r : Ast.rule) =
  List.filter_map
    (function
      | Least (c, ks) -> Some { minimize = true; key = Cmp ("", ks); cost = c }
      | Most (c, ks) -> Some { minimize = false; key = Cmp ("", ks); cost = c }
      | _ -> None)
    r.body

let rec compile_vterm vars = function
  | Var v ->
    let rec idx i = function
      | [] -> invalid_arg ("choice variable not in V: " ^ v)
      | x :: _ when String.equal x v -> i
      | _ :: rest -> idx (i + 1) rest
    in
    VPos (idx 0 vars)
  | Cst v -> VCst v
  | Cmp (f, args) -> VCmp (f, List.map (compile_vterm vars) args)
  | Binop (op, a, b) -> VBinop (op, compile_vterm vars a, compile_vterm vars b)

let compile_crule ?(compiled = false) ridx (r : Ast.rule) =
  let stage = stage_of_rule r in
  let fds =
    match stage with
    | None -> choice_fds r
    | Some (v, pos) ->
      let w = List.filteri (fun i _ -> i <> pos) r.head.args in
      [ ([ Var v ], w); (w, [ Var v ]) ] @ choice_fds r
  in
  let vars = Rewrite.choice_vars fds in
  let extra_bound = match stage with Some (v, _) -> [ v ] | None -> [] in
  let unsafe msg =
    raise (Unsupported (Printf.sprintf "unsafe rule '%s': %s" (Pretty.rule_to_string r) msg))
  in
  let body =
    try Eval.compile_body ~extra_bound (flat_literals r) with Eval.Unsafe msg -> unsafe msg
  in
  let out_terms = List.map (fun v -> Var v) vars in
  let extrema = extrema_of r in
  let compile_t t = try Eval.compile_term body t with Eval.Unsafe msg -> unsafe msg in
  let c_out = Array.of_list (List.map compile_t out_terms) in
  let c_fds = List.map (fun (l, rr) -> (List.map compile_t l, List.map compile_t rr)) fds in
  let c_ext = Array.of_list (List.map (fun e -> (compile_t e.key, compile_t e.cost)) extrema) in
  let cc =
    if not compiled then None
    else begin
      let bound = match stage with Some (v, _) -> [ Eval.slot body v ] | None -> [] in
      let chain = Compile.of_body ~bound body in
      Some
        { cc_chain = chain;
          cc_out = Compile.compile_row chain c_out;
          cc_fds =
            List.map
              (fun (l, rr) ->
                (List.map (Compile.compile_value chain) l, List.map (Compile.compile_value chain) rr))
              c_fds;
          cc_ext = Array.map (fun (k, c) -> (Compile.compile_value chain k, Compile.compile_value chain c)) c_ext;
          cc_scratch = [||] }
    end
  in
  { ridx; label = Telemetry.rule_label r; head = r.head; vars; out_terms;
    fds; body; extrema; stage;
    c_out; c_fds; c_ext;
    c_min = Array.of_list (List.map (fun e -> e.minimize) extrema);
    v_fds = List.map (fun (l, rr) -> (List.map (compile_vterm vars) l, List.map (compile_vterm vars) rr)) fds;
    c_scratch = [||]; cc }

(* The rewritten positive rule: head <- flat body, chosen$i(V).  The
   extrema are dropped when the head is fully determined by V (always
   the case for next rules), mirroring the paper's remark that the
   upper least "only recomputes the one in the lower rule". *)
let positive_rule cr (r : Ast.rule) =
  let chosen_atom = atom (Rewrite.chosen_pred cr.ridx) cr.out_terms in
  let head_determined =
    List.for_all (fun v -> List.mem v cr.vars) (atom_vars r.head)
  in
  let keep_extrema = if head_determined then [] else List.filter
      (function Least _ | Most _ -> true | _ -> false) r.body
  in
  { head = r.head; body = flat_literals r @ keep_extrema @ [ Pos chosen_atom ] }

(* ------------------------------------------------------------------ *)
(* FD bookkeeping                                                      *)
(* ------------------------------------------------------------------ *)

(* Evaluate a compiled choice-goal term against a chosen$i row. *)
let rec vterm_value row = function
  | VPos i -> row.(i)
  | VCst v -> v
  | VCmp ("", args) -> Value.Tup (List.map (vterm_value row) args)
  | VCmp (f, args) -> Value.App (f, List.map (vterm_value row) args)
  | VBinop (op, a, b) -> (
    (* Shares the overflow-checked arithmetic of rule bodies. *)
    try Eval.apply_binop op (vterm_value row a) (vterm_value row b)
    with Eval.Unsafe msg -> raise (Unsupported (msg ^ " in choice goal")))

type fd_state = {
  cr : crule;
  rel : Relation.t;  (* chosen$ridx, lives in the database *)
  tables : Value.t Value.Tbl.t list;  (* per FD: L-projection -> R-projection *)
  mutable mark : int;  (* replay watermark on [rel] *)
}

let fd_projections row (l, r) =
  (Value.Tup (List.map (vterm_value row) l), Value.Tup (List.map (vterm_value row) r))

let make_fd_state db cr =
  let rel = Database.relation db (Rewrite.chosen_pred cr.ridx) (List.length cr.vars) in
  { cr; rel; tables = List.map (fun _ -> Value.Tbl.create 64) cr.fds; mark = 0 }

let replay_chosen st =
  Relation.iter_from st.rel st.mark (fun row ->
      List.iter2
        (fun fd tbl ->
          let l, r = fd_projections row fd in
          Value.Tbl.replace tbl l r)
        st.cr.v_fds st.tables);
  st.mark <- Relation.cardinal st.rel

(* FD-compatibility of a solution (projections computed from the
   environment, so non-V constants inside choice goals work too). *)
let compatible st projections =
  List.for_all2
    (fun tbl (l, r) ->
      match Value.Tbl.find_opt tbl l with None -> true | Some r' -> Value.equal r r')
    st.tables projections

(* ------------------------------------------------------------------ *)
(* Stage tracking                                                      *)
(* ------------------------------------------------------------------ *)

type tracker = { pred : string; pos : int; mutable mark : int; mutable maxv : int }

let current_stage db tr =
  (match Database.find db tr.pred with
  | None -> ()
  | Some rel ->
    Relation.iter_from rel tr.mark (fun row ->
        match row.(tr.pos) with
        | Value.Int i -> if i > tr.maxv then tr.maxv <- i
        | v ->
          raise
            (Unsupported
               (Printf.sprintf "non-integer stage value %s in %s" (Value.to_string v) tr.pred)));
    tr.mark <- Relation.cardinal rel);
  tr.maxv

(* ------------------------------------------------------------------ *)
(* Candidate collection                                                *)
(* ------------------------------------------------------------------ *)

type candidate = {
  c_st : fd_state;
  c_idx : int;  (* stable index of [c_st] in its clique's fd_states *)
  c_row : Value.t array;  (* the new chosen$i tuple *)
}

(* Minimum slice length before candidate collection fans out.  Low on
   purpose: the gamma step dominates the engines' running time, so even
   small slices are worth sharding, and the exemplar suites then cover
   the parallel path at [--jobs] > 1. *)
let par_threshold = 2

let crule_scratch cr shards =
  if Array.length cr.c_scratch < shards then begin
    let old = cr.c_scratch in
    cr.c_scratch <-
      Array.init shards (fun i ->
          if i < Array.length old then old.(i)
          else
            let b = Eval.clone_body cr.body in
            (b, Eval.fresh_env b))
  end;
  cr.c_scratch

(* Data-parallel candidate enumeration.  Each shard runs its slice of
   the first scan read-only, deduplicates locally and keeps only
   FD-compatible solutions ([st.tables] is frozen for the whole region
   — replay happened before).  The local [seen] tables only ever hold
   compatible rows, so every occurrence of an incompatible row is
   checked and counted in both modes, and the coordinator's merge —
   shards in slice order, with a global first-occurrence dedup —
   reproduces the sequential solution list and telemetry counters
   exactly. *)
let collect_parallel pool limits st stage_binding db slice =
  let cr = st.cr in
  let n = Relation.slice_len slice in
  let shards = Par.nshards pool n in
  Eval.prepare_indexes cr.body db;
  let scratch = crule_scratch cr shards in
  let results = Array.make shards ([], 0, 0) in
  Par.run pool ~shards (fun s ->
      let body, env = scratch.(s) in
      Array.fill env 0 (Array.length env) None;
      (match stage_binding with
      | Some (slot, v) -> env.(slot) <- Some v
      | None -> ());
      let lo, hi = Par.bounds ~shards n s in
      let seen = Relation.Row_tbl.create 64 in
      let acc = ref [] and ex = ref 0 and rej = ref 0 in
      Eval.run_slice body db env slice lo hi (fun env ->
          incr ex;
          Limits.tick_candidates limits 1;
          let row = Eval.eval_row env cr.c_out in
          if not (Relation.Row_tbl.mem seen row) then begin
            let projections =
              List.map
                (fun (l, r) ->
                  ( Value.Tup (List.map (Eval.eval_cterm env) l),
                    Value.Tup (List.map (Eval.eval_cterm env) r) ))
                cr.c_fds
            in
            if compatible st projections then begin
              Relation.Row_tbl.add seen row ();
              let kcs =
                Array.map
                  (fun (k, c) -> (Eval.eval_cterm env k, Eval.eval_cterm env c))
                  cr.c_ext
              in
              acc := (row, Relation.mem st.rel row, kcs) :: !acc
            end
            else incr rej
          end);
      results.(s) <- (List.rev !acc, !ex, !rej));
  (results, shards, n)

(* Compiled twin of [collect_parallel]: same slicing, same local dedup,
   same merge contract, each shard running a private chain clone.  The
   V/FD/extrema programs are shared — they take the environment as an
   argument, so a clone's private env plugs straight in. *)
let collect_parallel_compiled pool limits cc st stage_binding db slice =
  let n = Relation.slice_len slice in
  let shards = Par.nshards pool n in
  Compile.prepare_indexes cc.cc_chain db;
  if Array.length cc.cc_scratch < shards then begin
    let old = cc.cc_scratch in
    cc.cc_scratch <-
      Array.init shards (fun i ->
          if i < Array.length old then old.(i) else Compile.clone cc.cc_chain)
  end;
  let scratch = cc.cc_scratch in
  let results = Array.make shards ([], 0, 0) in
  Par.run pool ~shards (fun s ->
      let ch = scratch.(s) in
      (match stage_binding with
      | Some (slot, v) -> Compile.set_slot ch slot v
      | None -> ());
      let cenv = Compile.env ch in
      let lo, hi = Par.bounds ~shards n s in
      let seen = Relation.Row_tbl.create 64 in
      let acc = ref [] and ex = ref 0 and rej = ref 0 in
      Compile.run_slice ch db slice lo hi (fun () ->
          incr ex;
          Limits.tick_candidates limits 1;
          let row = Compile.eval_row cenv cc.cc_out in
          if not (Relation.Row_tbl.mem seen row) then begin
            let projections =
              List.map
                (fun (l, r) ->
                  ( Value.Tup (List.map (fun p -> p cenv) l),
                    Value.Tup (List.map (fun p -> p cenv) r) ))
                cc.cc_fds
            in
            if compatible st projections then begin
              Relation.Row_tbl.add seen row ();
              let kcs = Array.map (fun (k, c) -> (k cenv, c cenv)) cc.cc_ext in
              acc := (row, Relation.mem st.rel row, kcs) :: !acc
            end
            else incr rej
          end);
      results.(s) <- (List.rev !acc, !ex, !rej));
  (results, shards, n)

let collect_candidates ?(idx = 0) ?(limits = Limits.unlimited) ?(pool = Par.sequential) db tele
    st tracker examined =
  let cr = st.cr in
  replay_chosen st;
  let rc = Telemetry.rule tele cr.label in
  let stage_binding =
    match cr.stage, tracker with
    | Some (v, _), Some tr ->
      Some (Eval.slot cr.body v, Value.Int (current_stage db tr + 1))
    | None, None -> None
    | _ -> assert false
  in
  (* Shards in slice order with a global first-occurrence dedup: the
     merged list reproduces the sequential solution order exactly. *)
  let merge_shards (results, shards, rows) =
    let gseen = Relation.Row_tbl.create 64 in
    let merged = ref [] in
    Telemetry.span tele "par:merge" (fun () ->
        Array.iter
          (fun (sols, ex, rej) ->
            examined := !examined + ex;
            (match rc with
            | Some rc ->
              rc.Telemetry.candidates <- rc.Telemetry.candidates + ex;
              rc.Telemetry.fd_rejections <- rc.Telemetry.fd_rejections + rej
            | None -> ());
            List.iter
              (fun ((row, _, _) as sol) ->
                if not (Relation.Row_tbl.mem gseen row) then begin
                  Relation.Row_tbl.add gseen row ();
                  merged := sol :: !merged
                end)
              sols)
          results);
    Telemetry.add_par tele ~shards ~rows;
    List.rev !merged
  in
  (* All FD-compatible solutions, existing chosen rows included: the
     existing rows act as witnesses that suppress costlier candidates
     (cf. the bi_st_c example), while only new rows are candidates. *)
  let solutions =
    match cr.cc with
    | Some cc ->
      (match stage_binding with
      | Some (slot, v) -> Compile.set_slot cc.cc_chain slot v
      | None -> ());
      let parallel_slice =
        if Par.size pool > 1 && Compile.shardable cc.cc_chain then
          match Compile.shard_scan cc.cc_chain db with
          | Some slice when Relation.slice_len slice >= par_threshold -> Some slice
          | _ -> None
        else None
      in
      (match parallel_slice with
      | Some slice ->
        merge_shards (collect_parallel_compiled pool limits cc st stage_binding db slice)
      | None ->
        let cenv = Compile.env cc.cc_chain in
        let seen = Relation.Row_tbl.create 64 in
        let solutions = ref [] in
        Compile.run cc.cc_chain db (fun () ->
            incr examined;
            Limits.tick_candidates limits 1;
            (match rc with Some rc -> rc.Telemetry.candidates <- rc.Telemetry.candidates + 1 | None -> ());
            let row = Compile.eval_row cenv cc.cc_out in
            if not (Relation.Row_tbl.mem seen row) then begin
              let projections =
                List.map
                  (fun (l, r) ->
                    ( Value.Tup (List.map (fun p -> p cenv) l),
                      Value.Tup (List.map (fun p -> p cenv) r) ))
                  cc.cc_fds
              in
              if compatible st projections then begin
                Relation.Row_tbl.add seen row ();
                let kcs = Array.map (fun (k, c) -> (k cenv, c cenv)) cc.cc_ext in
                solutions := (row, Relation.mem st.rel row, kcs) :: !solutions
              end
              else
                match rc with
                | Some rc -> rc.Telemetry.fd_rejections <- rc.Telemetry.fd_rejections + 1
                | None -> ()
            end);
        List.rev !solutions)
    | None ->
      let env = Eval.fresh_env cr.body in
      (match stage_binding with
      | Some (slot, v) -> env.(slot) <- Some v
      | None -> ());
      let parallel_slice =
        if Par.size pool > 1 && Eval.shardable cr.body then
          match Eval.shard_scan cr.body db env with
          | Some slice when Relation.slice_len slice >= par_threshold -> Some slice
          | _ -> None
        else None
      in
      (match parallel_slice with
      | Some slice -> merge_shards (collect_parallel pool limits st stage_binding db slice)
      | None ->
        let seen = Relation.Row_tbl.create 64 in
        let solutions = ref [] in
        Eval.run cr.body db env (fun env ->
            incr examined;
            Limits.tick_candidates limits 1;
            (match rc with Some rc -> rc.Telemetry.candidates <- rc.Telemetry.candidates + 1 | None -> ());
            let row = Eval.eval_row env cr.c_out in
            if not (Relation.Row_tbl.mem seen row) then begin
              let projections =
                List.map
                  (fun (l, r) ->
                    ( Value.Tup (List.map (Eval.eval_cterm env) l),
                      Value.Tup (List.map (Eval.eval_cterm env) r) ))
                  cr.c_fds
              in
              if compatible st projections then begin
                Relation.Row_tbl.add seen row ();
                let kcs =
                  Array.map (fun (k, c) -> (Eval.eval_cterm env k, Eval.eval_cterm env c)) cr.c_ext
                in
                solutions := (row, Relation.mem st.rel row, kcs) :: !solutions
              end
              else
                match rc with
                | Some rc -> rc.Telemetry.fd_rejections <- rc.Telemetry.fd_rejections + 1
                | None -> ()
            end);
        List.rev !solutions)
  in
  (* Optimum per key for each extremum, over all compatible solutions. *)
  let bests = Array.map (fun _ -> Value.Tbl.create 16) cr.c_ext in
  List.iter
    (fun (_, _, kcs) ->
      Array.iteri
        (fun i (k, c) ->
          let tbl = bests.(i) in
          match Value.Tbl.find_opt tbl k with
          | None -> Value.Tbl.replace tbl k c
          | Some best ->
            let better =
              if cr.c_min.(i) then Value.compare c best < 0 else Value.compare c best > 0
            in
            if better then Value.Tbl.replace tbl k c)
        kcs)
    solutions;
  List.filter_map
    (fun (row, existing, kcs) ->
      let optimal = ref true in
      Array.iteri
        (fun i (k, c) ->
          if Value.compare (Value.Tbl.find bests.(i) k) c <> 0 then optimal := false)
        kcs;
      if !optimal && not existing then Some { c_st = st; c_idx = idx; c_row = row } else None)
    solutions

(* ------------------------------------------------------------------ *)
(* Clique evaluation                                                   *)
(* ------------------------------------------------------------------ *)

type clique_plan = {
  crules : (crule * Ast.rule) list;  (* compiled choice rules with originals *)
  flat : Ast.program;  (* flat rules + rewritten positive rules *)
  sub_cliques : string list list;  (* stratified sub-structure of [flat] *)
}

let make_plan crules_in flat_rules =
  let positives = List.map (fun (cr, r) -> positive_rule cr r) crules_in in
  let flat = flat_rules @ positives in
  let sub_graph = Depgraph.make flat in
  { crules = crules_in; flat; sub_cliques = Depgraph.cliques sub_graph }

let wrap_invalid f = try f () with Invalid_argument msg -> raise (Unsupported msg)

type clique_state = {
  plan : clique_plan;
  fd_states : fd_state list;
  trackers : tracker option list;  (* aligned with fd_states *)
  saturators : Seminaive.incremental list;  (* one per flat sub-clique *)
  pool : Par.t;
}

let saturate_flat state =
  wrap_invalid (fun () -> List.iter Seminaive.step state.saturators)

let make_state ?telemetry ?limits ?(pool = Par.sequential) ?(compiled = false) db plan =
  let saturators =
    wrap_invalid (fun () ->
        List.map
          (fun sub ->
            Seminaive.make ~allow_clique_negation:true ?telemetry ?limits ~pool ~compiled db
              ~clique:sub plan.flat)
          plan.sub_cliques)
  in
  let fd_states = List.map (fun (cr, _) -> make_fd_state db cr) plan.crules in
  let trackers =
    List.map
      (fun (cr, _) ->
        match cr.stage with
        | None -> None
        | Some (_, pos) ->
          ignore (Database.relation db cr.head.pred (List.length cr.head.args));
          Some { pred = cr.head.pred; pos; mark = 0; maxv = 0 })
      plan.crules
  in
  { plan; fd_states; trackers; saturators; pool }

let all_candidates ?limits db tele state examined =
  List.concat
    (List.mapi
       (fun i (st, tr) ->
         collect_candidates ~idx:i ?limits ~pool:state.pool db tele st tr examined)
       (List.combine state.fd_states state.trackers))

let fire ?(telemetry = Telemetry.none) ?(limits = Limits.unlimited) db cand =
  ignore (Relation.add cand.c_st.rel cand.c_row);
  Limits.tick_derived limits 1;
  Telemetry.fired telemetry cand.c_st.cr.label;
  ignore db

let eval_choice_clique ~policy ~telemetry ~limits ?pool ?(compiled = false) db plan stats_steps
    stats_examined =
  let state = make_state ~telemetry ~limits ?pool ~compiled db plan in
  let rng =
    match policy with First -> None | Random seed -> Some (Random.State.make [| seed |])
  in
  saturate_flat state;
  let rec loop () =
    let cands = all_candidates ~limits db telemetry state stats_examined in
    match cands with
    | [] -> ()
    | _ ->
      let cand =
        match rng with
        | None -> List.hd cands
        | Some st -> List.nth cands (Random.State.int st (List.length cands))
      in
      Limits.tick_step limits;
      fire ~telemetry ~limits db cand;
      incr stats_steps;
      saturate_flat state;
      loop ()
  in
  loop ();
  (* Final stage values: the trackers are fresh — the loop only ends
     after a candidate collection, which replays every head relation. *)
  if Telemetry.enabled telemetry then
    List.iter2
      (fun st tr ->
        match tr with
        | Some tr -> Telemetry.set_last_stage telemetry st.cr.label tr.maxv
        | None -> ())
      state.fd_states state.trackers

(* ------------------------------------------------------------------ *)
(* Program driver                                                      *)
(* ------------------------------------------------------------------ *)

type program_plan = {
  facts : Ast.program;
  cliques : [ `Plain of string list | `Choice of clique_plan ] list;
}

let plan_program ?(compiled = false) program =
  let facts, rules = List.partition Ast.is_fact program in
  (* Number the choice rules exactly as Rewrite.expand_choice does on
     the next-expanded program: program order among choice rules. *)
  let counter = ref 0 in
  let tagged =
    List.map
      (fun r ->
        if is_choice_rule r then begin
          let i = !counter in
          incr counter;
          `Choice (compile_crule ~compiled i r, r)
        end
        else `Flat r)
      rules
  in
  let graph = Depgraph.make (Rewrite.expand_next rules) in
  let cliques =
    List.map
      (fun clique ->
        let crules_in =
          List.filter_map
            (function
              | `Choice ((cr : crule), r) when List.mem cr.head.pred clique -> Some (cr, r)
              | _ -> None)
            tagged
        in
        let flat_in =
          List.filter_map
            (function
              | `Flat r when List.mem (head_pred r) clique -> Some r
              | _ -> None)
            tagged
        in
        if crules_in = [] then `Plain clique else `Choice (make_plan crules_in flat_in))
      (Depgraph.cliques graph)
  in
  { facts; cliques }

let clique_preds = function
  | `Plain preds -> preds
  | `Choice cplan -> List.map (fun ((cr : crule), _) -> cr.head.pred) cplan.crules

let stratum_label i clique =
  Printf.sprintf "stratum %d: %s" i (String.concat "," (clique_preds clique))

let run_governed ?(policy = First) ?(telemetry = Telemetry.none) ?(limits = Limits.unlimited)
    ?(jobs = 1) ?(compiled = false) ?plan ?db program =
  let pool = Par.get jobs in
  let db = match db with Some db -> db | None -> Database.create () in
  let steps = ref 0 and examined = ref 0 in
  let stats () = { gamma_steps = !steps; candidates_examined = !examined } in
  Limits.govern ~telemetry limits
    ~partial:(fun () -> (db, stats ()))
    (fun () ->
      (* Compiled mode reorders reorderable rule bodies by the cost
         plan first; the chains are then built from the planned bodies,
         so plan dumps, compiled runs and [gbc plan] all agree. *)
      let program =
        if not compiled then program
        else
          match plan with
          | Some p -> Plan.program p
          | None -> Plan.program (Plan.analyze ~telemetry ~db program)
      in
      let pplan = plan_program ~compiled program in
      Database.load_facts db pplan.facts;
      List.iteri
        (fun i clique ->
          let label = stratum_label i clique in
          Limits.set_active limits label;
          Telemetry.stratum telemetry label;
          Telemetry.span telemetry label (fun () ->
              match clique with
              | `Plain preds ->
                wrap_invalid (fun () ->
                    try
                      Seminaive.eval_clique ~telemetry ~limits ~pool ~compiled db ~clique:preds
                        (List.filter (fun r -> not (Ast.is_fact r)) program)
                    with Eval.Unsafe msg -> raise (Unsupported msg))
              | `Choice cplan ->
                eval_choice_clique ~policy ~telemetry ~limits ~pool ~compiled db cplan steps
                  examined))
        pplan.cliques;
      (db, stats ()))

(* The ungoverned entry points re-raise: callers that pass a governor
   and want the partial database use [run_governed]. *)
let run ?policy ?telemetry ?limits ?jobs ?compiled ?plan ?db program =
  match run_governed ?policy ?telemetry ?limits ?jobs ?compiled ?plan ?db program with
  | Limits.Complete x -> x
  | Limits.Partial (_, d) -> raise (Limits.Exhausted d.Limits.violated)

let model ?policy ?db program = fst (run ?policy ?db program)

(* ------------------------------------------------------------------ *)
(* Enumeration of all choice models                                    *)
(* ------------------------------------------------------------------ *)

(* Depth-first exploration of the gamma choices shared by [enumerate]
   and [find].  Intermediate states are deduplicated by signature —
   different firing orders converge on the same database, so without
   the memo the search would pay once per permutation. *)
let explore ?(max_models = 10_000) ?(limits = Limits.unlimited) ?db ~accept program =
  let base = match db with Some db -> Database.copy db | None -> Database.create () in
  Limits.check_now limits;
  let plan = plan_program program in
  Database.load_facts base plan.facts;
  let examined = ref 0 in
  let rules = List.filter (fun r -> not (Ast.is_fact r)) program in
  let eval_plain preds db =
    wrap_invalid (fun () -> Seminaive.eval_clique ~limits db ~clique:preds rules);
    [ db ]
  in
  let signature db = Format.asprintf "%a" Database.pp db in
  let found = ref [] in
  let nfound = ref 0 in
  let explore_choice cplan db =
    let visited = Hashtbl.create 64 in
    let leaves = ref [] in
    let rec go db state =
      match all_candidates ~limits db Telemetry.none state examined with
      | [] -> leaves := db :: !leaves
      | cands ->
        List.iter
          (fun cand ->
            let db' = Database.copy db in
            let state' = make_state ~limits db' cplan in
            (* The candidate's fd_state belongs to the parent branch;
               rebind it by its stable index in the rebuilt state. *)
            let cand' = { cand with c_st = List.nth state'.fd_states cand.c_idx } in
            Limits.tick_step limits;
            fire ~limits db' cand';
            saturate_flat state';
            let s = signature db' in
            if not (Hashtbl.mem visited s) then begin
              Hashtbl.add visited s ();
              go db' state'
            end)
          cands
    in
    let state = make_state ~limits db cplan in
    saturate_flat state;
    go db state;
    List.rev !leaves
  in
  let module Done = struct
    exception Done
  end in
  (try
     let dbs =
       List.fold_left
         (fun dbs clique ->
           match clique with
           | `Plain preds -> List.concat_map (eval_plain preds) dbs
           | `Choice cplan -> List.concat_map (explore_choice cplan) dbs)
         [ base ] plan.cliques
     in
     let seen = Hashtbl.create 64 in
     List.iter
       (fun db ->
         let s = signature db in
         if not (Hashtbl.mem seen s) then begin
           Hashtbl.add seen s ();
           if accept db then begin
             found := db :: !found;
             incr nfound;
             if !nfound >= max_models then raise Done.Done
           end
         end)
       dbs
   with Done.Done -> ());
  List.rev !found

let enumerate ?max_models ?limits ?db program =
  explore ?max_models ?limits ?db ~accept:(fun _ -> true) program

let find ?limits ?db ~accept program =
  match explore ~max_models:1 ?limits ?db ~accept program with [] -> None | db :: _ -> Some db
