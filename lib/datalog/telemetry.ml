(* Engine telemetry: per-rule counters, per-stratum wall-clock spans
   and fixpoint iteration traces.  Both engines feed one [t]; the
   default sink [none] is disabled and shared, so instrumentation on
   the hot paths costs one mutable-bool test and no allocation. *)

let log_src = Logs.Src.create "gbc.engine" ~doc:"Greedy-by-Choice engine traces"

module Log = (val Logs.src_log log_src : Logs.LOG)

type rule_counters = {
  mutable derived : int;
  mutable candidates : int;
  mutable fd_rejections : int;
  mutable fired : int;
  mutable last_stage : int;
  mutable pushes : int;
  mutable pops : int;
  mutable shadowed : int;
  mutable stale : int;
  mutable revalidations : int;
  mutable max_queue : int;
}

type span = { mutable wall : float; mutable entries : int }

type t = {
  enabled : bool;
  rules : (string, rule_counters) Hashtbl.t;
  deltas : (string, int ref) Hashtbl.t;
  spans : (string, span) Hashtbl.t;
  mutable span_order : string list;  (* first-entry order, for reporting *)
  mutable rule_order : string list;
  mutable iterations : int;
  mutable gamma_steps : int;
  mutable strata : int;
  (* Data-parallel saturation (Par): recorded by the sequential
     coordinator after each region's merge — shards never touch the
     collector, so no field here needs to be atomic. *)
  mutable par_regions : int;
  mutable par_shards : int;
  mutable par_rows : int;
}

let create_internal enabled =
  { enabled;
    rules = Hashtbl.create 16;
    deltas = Hashtbl.create 16;
    spans = Hashtbl.create 8;
    span_order = [];
    rule_order = [];
    iterations = 0;
    gamma_steps = 0;
    strata = 0;
    par_regions = 0;
    par_shards = 0;
    par_rows = 0 }

let none = create_internal false
let create () = create_internal true
let enabled t = t.enabled

(* ------------------------------------------------------------------ *)
(* Rule labels and counters                                            *)
(* ------------------------------------------------------------------ *)

(* Stable, human-readable label of a rule: head predicate plus a
   truncated rendering of the whole clause.  Distinct rules that render
   identically share one row, which is what a reader wants anyway. *)
let rule_label (r : Ast.rule) =
  let s = Pretty.rule_to_string r in
  if String.length s <= 56 then s else String.sub s 0 53 ^ "..."

let rule t label =
  if not t.enabled then None
  else
    match Hashtbl.find_opt t.rules label with
    | Some rc -> Some rc
    | None ->
      let rc =
        { derived = 0; candidates = 0; fd_rejections = 0; fired = 0;
          last_stage = 0; pushes = 0; pops = 0; shadowed = 0; stale = 0;
          revalidations = 0; max_queue = 0 }
      in
      Hashtbl.add t.rules label rc;
      t.rule_order <- label :: t.rule_order;
      Some rc

let add_derived t label n =
  if t.enabled && n > 0 then
    match rule t label with Some rc -> rc.derived <- rc.derived + n | None -> ()

let fired t ?stage label =
  if t.enabled then begin
    t.gamma_steps <- t.gamma_steps + 1;
    match rule t label with
    | Some rc ->
      rc.fired <- rc.fired + 1;
      (match stage with Some s -> rc.last_stage <- max rc.last_stage s | None -> ())
    | None -> ()
  end

let set_last_stage t label stage =
  if t.enabled then
    match rule t label with
    | Some rc -> rc.last_stage <- max rc.last_stage stage
    | None -> ()

(* Absolute snapshot of a rule's (R,Q,L) statistics; called once per
   clique evaluation, so [max]-merging keeps re-runs idempotent. *)
let queue t label (s : Gbc_ordered.Rql.stats) =
  if t.enabled then
    match rule t label with
    | Some rc ->
      rc.pushes <- rc.pushes + s.Gbc_ordered.Rql.inserted;
      rc.pops <- rc.pops + s.Gbc_ordered.Rql.stale + s.Gbc_ordered.Rql.invalid + s.Gbc_ordered.Rql.used;
      rc.shadowed <- rc.shadowed + s.Gbc_ordered.Rql.shadowed;
      rc.stale <- rc.stale + s.Gbc_ordered.Rql.stale;
      rc.revalidations <- rc.revalidations + s.Gbc_ordered.Rql.invalid;
      rc.max_queue <- max rc.max_queue s.Gbc_ordered.Rql.max_queue
    | None -> ()

let add_delta t pred n =
  if t.enabled && n > 0 then
    match Hashtbl.find_opt t.deltas pred with
    | Some r -> r := !r + n
    | None -> Hashtbl.add t.deltas pred (ref n)

let delta_tuples t pred =
  match Hashtbl.find_opt t.deltas pred with Some r -> Some !r | None -> None

(* ------------------------------------------------------------------ *)
(* Iterations, strata, spans                                           *)
(* ------------------------------------------------------------------ *)

let iteration t label =
  if t.enabled then t.iterations <- t.iterations + 1;
  Log.debug (fun m -> m "fixpoint iteration (%s)" label)

let stratum t label =
  if t.enabled then t.strata <- t.strata + 1;
  Log.debug (fun m -> m "entering stratum %s" label)

let span t label f =
  if not t.enabled then f ()
  else begin
    let sp =
      match Hashtbl.find_opt t.spans label with
      | Some sp -> sp
      | None ->
        let sp = { wall = 0.0; entries = 0 } in
        Hashtbl.add t.spans label sp;
        t.span_order <- label :: t.span_order;
        sp
    in
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        sp.wall <- sp.wall +. (Unix.gettimeofday () -. t0);
        sp.entries <- sp.entries + 1)
      f
  end

let add_par t ~shards ~rows =
  if t.enabled then begin
    t.par_regions <- t.par_regions + 1;
    t.par_shards <- t.par_shards + shards;
    t.par_rows <- t.par_rows + rows
  end

let iterations t = t.iterations
let gamma_steps t = t.gamma_steps

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let rules_in_order t = List.rev t.rule_order
let spans_in_order t = List.rev t.span_order

let rules t =
  List.map (fun label -> (label, Hashtbl.find t.rules label)) (rules_in_order t)

let totals t =
  let sum f = Hashtbl.fold (fun _ rc acc -> acc + f rc) t.rules 0 in
  [ ("gamma_steps", t.gamma_steps);
    ("iterations", t.iterations);
    ("strata", t.strata);
    ("derived", sum (fun rc -> rc.derived));
    ("candidates", sum (fun rc -> rc.candidates));
    ("fd_rejections", sum (fun rc -> rc.fd_rejections));
    ("fired", sum (fun rc -> rc.fired));
    ("pushes", sum (fun rc -> rc.pushes));
    ("pops", sum (fun rc -> rc.pops));
    ("shadowed", sum (fun rc -> rc.shadowed));
    ("stale", sum (fun rc -> rc.stale));
    ("revalidations", sum (fun rc -> rc.revalidations));
    ("delta_tuples", Hashtbl.fold (fun _ r acc -> acc + !r) t.deltas 0);
    ("par_regions", t.par_regions);
    ("par_shards", t.par_shards);
    ("par_rows", t.par_rows) ]

let pp ppf t =
  if not t.enabled then Format.fprintf ppf "telemetry disabled@."
  else begin
    let header =
      [ "rule"; "derived"; "cand"; "fd_rej"; "fired"; "stage"; "push"; "pop";
        "shadow"; "stale"; "reval"; "maxq" ]
    in
    let rows =
      List.map
        (fun label ->
          let rc = Hashtbl.find t.rules label in
          label
          :: List.map string_of_int
               [ rc.derived; rc.candidates; rc.fd_rejections; rc.fired;
                 rc.last_stage; rc.pushes; rc.pops; rc.shadowed; rc.stale;
                 rc.revalidations; rc.max_queue ])
        (rules_in_order t)
    in
    let widths =
      List.fold_left
        (fun acc row -> List.map2 (fun w c -> max w (String.length c)) acc row)
        (List.map String.length header)
        rows
    in
    let render row =
      String.concat "  " (List.map2 (fun w c -> Printf.sprintf "%-*s" w c) widths row)
    in
    Format.fprintf ppf "per-rule counters@.";
    Format.fprintf ppf "%s@." (render header);
    List.iter (fun row -> Format.fprintf ppf "%s@." (render row)) rows;
    if Hashtbl.length t.deltas > 0 then begin
      Format.fprintf ppf "@.delta tuples published@.";
      Hashtbl.fold (fun p r acc -> (p, !r) :: acc) t.deltas []
      |> List.sort compare
      |> List.iter (fun (p, n) -> Format.fprintf ppf "  %-24s %d@." p n)
    end;
    if t.span_order <> [] then begin
      Format.fprintf ppf "@.wall-clock spans@.";
      List.iter
        (fun label ->
          let sp = Hashtbl.find t.spans label in
          Format.fprintf ppf "  %-40s %.6fs  (%d entr%s)@." label sp.wall sp.entries
            (if sp.entries = 1 then "y" else "ies"))
        (spans_in_order t)
    end;
    Format.fprintf ppf "@.totals@.";
    List.iter (fun (k, v) -> Format.fprintf ppf "  %-16s %d@." k v) (totals t)
  end

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 512 in
  let obj fields =
    "{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" (json_escape k) v) fields)
    ^ "}"
  in
  let rule_json rc =
    obj
      [ ("derived", string_of_int rc.derived);
        ("candidates", string_of_int rc.candidates);
        ("fd_rejections", string_of_int rc.fd_rejections);
        ("fired", string_of_int rc.fired);
        ("last_stage", string_of_int rc.last_stage);
        ("pushes", string_of_int rc.pushes);
        ("pops", string_of_int rc.pops);
        ("shadowed", string_of_int rc.shadowed);
        ("stale", string_of_int rc.stale);
        ("revalidations", string_of_int rc.revalidations);
        ("max_queue", string_of_int rc.max_queue) ]
  in
  let rules =
    obj
      (List.map
         (fun label -> (label, rule_json (Hashtbl.find t.rules label)))
         (rules_in_order t))
  in
  let deltas =
    obj
      (Hashtbl.fold (fun p r acc -> (p, string_of_int !r) :: acc) t.deltas []
      |> List.sort compare)
  in
  let spans =
    obj
      (List.map
         (fun label ->
           let sp = Hashtbl.find t.spans label in
           (label, Printf.sprintf "%.6f" sp.wall))
         (spans_in_order t))
  in
  let totals = obj (List.map (fun (k, v) -> (k, string_of_int v)) (totals t)) in
  Buffer.add_string buf
    (obj [ ("totals", totals); ("rules", rules); ("deltas", deltas); ("spans_s", spans) ]);
  Buffer.contents buf
