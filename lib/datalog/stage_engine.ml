open Ast
module EC = Engine_core
module Rql = Gbc_ordered.Rql

exception Not_compilable of string

type stats = {
  gamma_steps : int;
  inserted : int;
  shadowed : int;
  stale : int;
  invalid_pops : int;
  max_queue : int;
}

type shadow_mode = [ `Auto | `Off ]

(* ------------------------------------------------------------------ *)
(* Bound facts (local, rule-level)                                     *)
(* ------------------------------------------------------------------ *)

(* Pairs (a, b) with a > b provable from one comparison/equation goal,
   plus (a, b) pin pairs from a = b + 1 (used for newer-wins). *)
let gt_pairs (r : Ast.rule) =
  List.filter_map
    (fun lit ->
      match lit with
      | Rel (Lt, Var a, Var b) -> Some (b, a, false)
      | Rel (Gt, Var a, Var b) -> Some (a, b, false)
      | Rel (Eq, Var a, Binop (Add, Var b, Cst (Value.Int 1)))
      | Rel (Eq, Binop (Add, Var b, Cst (Value.Int 1)), Var a) -> Some (a, b, true)
      | _ -> None)
    r.body

(* ------------------------------------------------------------------ *)
(* Shadow-safety analysis                                              *)
(* ------------------------------------------------------------------ *)

module SS = Set.Make (String)

let tvars ts = SS.of_list (List.concat_map term_vars ts)

(* See DESIGN.md: an argument set D may be dropped from the congruence
   key iff its variables are FD-determined by the remaining key and
   every FD's left-hand side stays inside the key; additionally all
   non-stage source variables (the cost included) must lie in the FD
   closure of the key, so that within a class the cheapest fact is
   always an acceptable representative. *)
let shadow_analysis ~svars ~stagevars ~costvars ~fds =
  let k0 = SS.diff (SS.diff svars stagevars) costvars in
  let lhs_of (l, _) = tvars l and rhs_of (_, r) = tvars r in
  let all_lhs = List.fold_left (fun acc fd -> SS.union acc (lhs_of fd)) SS.empty fds in
  let rec drop d =
    let candidate =
      SS.choose_opt
        (SS.filter
           (fun v ->
             (not (SS.mem v d))
             && (not (SS.mem v all_lhs))
             && List.exists (fun fd -> SS.mem v (rhs_of fd)) fds
             && List.for_all
                  (fun fd ->
                    (not (SS.mem v (rhs_of fd)))
                    || SS.subset (lhs_of fd) (SS.remove v (SS.diff k0 d)))
                  fds)
           k0)
    in
    match candidate with None -> d | Some v -> drop (SS.add v d)
  in
  let d = drop SS.empty in
  let key = SS.diff k0 d in
  let closure =
    let rec go s =
      let s' =
        List.fold_left
          (fun s fd -> if SS.subset (lhs_of fd) s then SS.union s (rhs_of fd) else s)
          s fds
      in
      if SS.equal s s' then s else go s'
    in
    go key
  in
  let safe =
    List.for_all (fun fd -> SS.subset (lhs_of fd) key) fds
    && SS.subset (SS.diff svars stagevars) closure
  in
  (safe, key)

(* ------------------------------------------------------------------ *)
(* Compiled next rules                                                 *)
(* ------------------------------------------------------------------ *)

type srule = {
  cr : EC.crule;
  rule : Ast.rule;
  source : atom;
  residual : Eval.body;
  minimize : bool;  (* meaningful when has_extremum *)
  has_extremum : bool;
  cost : term option;
  key_positions : int list;
  stage_positions : int list;
  shadow : bool;
  newer_wins : bool;
  stage_var : string;
  (* Hot-path forms, resolved against [residual] once at compile time:
     the pop-validate loop binds and evaluates these per candidate row,
     with no per-call AST re-resolution. *)
  stage_slot : int;
  src_pats : Eval.cterm array;  (* source argument terms *)
  c_out : Eval.cterm array;  (* chosen$i tuple terms *)
  c_head : Eval.cterm array;  (* head argument terms *)
  c_fds : (Eval.cterm list * Eval.cterm list) list;
  c_cost : Eval.cterm option;
  cost_pos : int option;
  (* Source argument position holding the extremum cost when the cost
     term is that argument's plain variable — the compiled queue then
     reads costs straight out of the row, no memo table. *)
  (* Compiled execution of the residual: closure chain plus output /
     FD evaluators over its unboxed environment ([None] when running
     interpreted).  Source-row costs keep using the interpreted terms —
     they are computed once per row and memoized by the queue. *)
  scc : scompiled option;
}

and scompiled = {
  sc_chain : Compile.t;
  sc_bind : Compile.binder;  (* [src_pats] against a source row *)
  sc_out : Compile.value_prog array;
  sc_head : Compile.value_prog array;
  sc_fds : (Compile.value_prog list * Compile.value_prog list) list;
  sc_fd_cols : (int * int array * Value.t array * int array) array option;
  (* When every projection of every choice FD is a plain chosen-row
     column ([VPos]), the FD state needs no tables at all: per FD the
     left-column bitmask, the left columns, a reusable full-arity probe
     key and the right columns, checked against the chosen relation's
     own indexes. *)
}

(* Index-backed FD compatibility: the chosen relation's rows are
   pairwise FD-consistent (every add went through this check), so a
   candidate is compatible iff every stored row agreeing with it on an
   FD's left columns also agrees on the right columns.  Probes reuse
   the relation's column indexes — no projection tuples, no replay. *)
exception Fd_conflict

let compatible_cols rel fds (cand : Value.t array) =
  try
    Array.iter
      (fun (mask, lcols, key, rcols) ->
        for j = 0 to Array.length lcols - 1 do
          let c = lcols.(j) in
          key.(c) <- cand.(c)
        done;
        Relation.iter_matching_cols rel mask key (fun row ->
            for j = 0 to Array.length rcols - 1 do
              let c = rcols.(j) in
              if not (Value.equal row.(c) cand.(c)) then raise Fd_conflict
            done))
      fds;
    true
  with Fd_conflict -> false

let compile_srule ?(compiled = false) (cr : EC.crule) (r : Ast.rule) =
  let fail msg = raise (Not_compilable (msg ^ ": " ^ Pretty.rule_to_string r)) in
  let stage_var =
    match cr.EC.stage with Some (v, _) -> v | None -> assert false
  in
  (match cr.EC.extrema with
  | [] | [ _ ] -> ()
  | _ -> fail "more than one extremum in a next rule");
  let minimize, cost, has_extremum =
    match cr.EC.extrema with
    | [] -> (true, None, false)
    | [ e ] -> (e.EC.minimize, Some e.EC.cost, true)
    | _ -> assert false
  in
  if not (List.for_all (fun v -> List.mem v cr.EC.vars) (atom_vars r.head)) then
    fail "head not determined by the choice variables";
  let positives = positive_body_atoms r in
  let cost_vars = match cost with None -> [] | Some t -> term_vars t in
  let source =
    match
      List.find_opt
        (fun a -> List.for_all (fun v -> List.mem v (atom_vars a)) cost_vars)
        positives
    with
    | Some a -> a
    | None -> fail "no positive body atom binds the extremum cost"
  in
  (* Residual: the flat body minus the first occurrence of the source. *)
  let removed = ref false in
  let residual_literals =
    List.filter
      (fun lit ->
        match lit with
        | Pos a when (not !removed) && a == source ->
          removed := true;
          false
        | Next _ | Choice _ | Least _ | Most _ -> false
        | _ -> true)
      r.body
  in
  let extra_bound = stage_var :: atom_vars source in
  let residual =
    try Eval.compile_body ~extra_bound residual_literals
    with Eval.Unsafe msg -> fail ("unsafe residual: " ^ msg)
  in
  let pairs = gt_pairs r in
  let is_stage_term = function
    | Var j ->
      List.exists (fun (a, b, _) -> String.equal a stage_var && String.equal b j) pairs
    | _ -> false
  in
  let stage_positions =
    List.mapi (fun i t -> (i, t)) source.args
    |> List.filter_map (fun (i, t) -> if is_stage_term t then Some i else None)
  in
  let newer_wins =
    List.exists
      (fun (a, b, pin) ->
        pin && String.equal a stage_var
        && List.exists
             (fun pos ->
               match List.nth source.args pos with
               | Var j -> String.equal j b
               | _ -> false)
             stage_positions)
      pairs
  in
  let stagevars =
    SS.of_list
      (List.filter_map
         (fun pos -> match List.nth source.args pos with Var j -> Some j | _ -> None)
         stage_positions)
  in
  let safe, key =
    shadow_analysis ~svars:(SS.of_list (atom_vars source)) ~stagevars
      ~costvars:(SS.of_list cost_vars) ~fds:(choice_fds r)
  in
  let shadow = safe && has_extremum in
  let key_positions =
    List.mapi (fun i t -> (i, t)) source.args
    |> List.filter_map (fun (i, t) ->
           if List.mem i stage_positions then None
           else
             let vs = term_vars t in
             if vs = [] then Some i
             else if List.exists (fun v -> SS.mem v key) vs then Some i
             else None)
  in
  let compile_t t =
    try Eval.compile_term residual t
    with Eval.Unsafe msg -> fail ("unsafe residual: " ^ msg)
  in
  let stage_slot = Eval.slot residual stage_var in
  let src_pats = Array.of_list (List.map compile_t source.args) in
  let c_out = Array.of_list (List.map compile_t cr.EC.out_terms) in
  let c_head = Array.of_list (List.map compile_t cr.EC.head.args) in
  let c_fds =
    List.map (fun (l, rr) -> (List.map compile_t l, List.map compile_t rr)) cr.EC.fds
  in
  let scc =
    if not compiled then None
    else begin
      let bound =
        List.sort_uniq compare
          (List.map (Eval.slot residual) (stage_var :: atom_vars source))
      in
      let chain = Compile.of_body ~bound residual in
      let fd_cols =
        let arity = List.length cr.EC.vars in
        let cols vs =
          List.fold_right
            (fun v acc ->
              match (v, acc) with EC.VPos i, Some l -> Some (i :: l) | _ -> None)
            vs (Some [])
        in
        let conv (l, rr) =
          match (cols l, cols rr) with
          | Some ls, Some rs ->
            Some
              ( List.fold_left (fun m c -> m lor (1 lsl c)) 0 ls,
                Array.of_list ls,
                Array.make (max 1 arity) Value.unit,
                Array.of_list rs )
          | _ -> None
        in
        let rec go acc = function
          | [] -> Some (Array.of_list (List.rev acc))
          | fd :: rest -> (
            match conv fd with Some c -> go (c :: acc) rest | None -> None)
        in
        go [] cr.EC.v_fds
      in
      Some
        { sc_chain = chain;
          sc_bind = Compile.compile_binder ~bound:[ stage_slot ] src_pats;
          sc_out = Compile.compile_row chain c_out;
          sc_head = Compile.compile_row chain c_head;
          sc_fds =
            List.map
              (fun (l, rr) ->
                (List.map (Compile.compile_value chain) l, List.map (Compile.compile_value chain) rr))
              c_fds;
          sc_fd_cols = fd_cols }
    end
  in
  let cost_pos =
    match cost with
    | Some (Var v) ->
      let rec find i = function
        | [] -> None
        | Var w :: _ when String.equal w v -> Some i
        | _ :: rest -> find (i + 1) rest
      in
      find 0 source.args
    | _ -> None
  in
  { cr; rule = r; source; residual; minimize; has_extremum; cost; key_positions;
    stage_positions; shadow; newer_wins; stage_var; stage_slot; src_pats;
    c_out; c_head; c_fds;
    c_cost = Option.map compile_t cost; cost_pos; scc }

(* ------------------------------------------------------------------ *)
(* Matching a source row                                               *)
(* ------------------------------------------------------------------ *)

(* Bind the source atom's compiled argument terms against a stored row,
   writing variable bindings into the residual's environment.  The
   caller owns [env] and resets it between rows. *)
let bind_source sr (env : Eval.env) row = Eval.bind_row env sr.src_pats row

let row_cost sr env =
  match sr.c_cost with None -> Value.Int 0 | Some ct -> Eval.eval_cterm env ct

(* ------------------------------------------------------------------ *)
(* Clique evaluation                                                   *)
(* ------------------------------------------------------------------ *)

type staged = {
  sr : srule;
  rql : (Value.t array, Value.t) Rql.t;
  fd : EC.fd_state;
  tracker : EC.tracker;
  scratch : Eval.env;  (* reusable residual environment for [valid] *)
  mutable src_mark : int;
  src_rel : Relation.t;
  ins : Value.t array -> unit;  (* preallocated [Rql.insert], lean sync *)
  cfire : (unit -> int) option;
  (* Compiled pop-validate-fire; returns the stage fired at, or -1. *)
}

let reset_env (env : Eval.env) = Array.fill env 0 (Array.length env) None

exception Fired of Value.t array * Value.t array (* chosen row, head row *)

(* Compiled pop-validate-fire loop for one staged rule.  The closures
   are preallocated here rather than per fire, relations are resolved
   once per call rather than per candidate, the stage slot is written
   once per stage (the binder and the chain both treat it as bound),
   and FD checks go through {!compatible_cols} when the FDs are plain
   column projections — the validity semantics and therefore the fired
   sequence are exactly the interpreter's. *)
let make_cfire ~telemetry ~limits db (sr : srule) (sc : scompiled) ~rql ~fd ~tracker ~head_rel =
  let cenv = Compile.env sc.sc_chain in
  let rc = Telemetry.rule telemetry sr.cr.EC.label in
  let kont =
    match sc.sc_fd_cols with
    | Some fds ->
      fun () ->
        let chosen_row = Compile.eval_row cenv sc.sc_out in
        if
          (not (Relation.mem fd.EC.rel chosen_row))
          && compatible_cols fd.EC.rel fds chosen_row
        then raise (Fired (chosen_row, Compile.eval_row cenv sc.sc_head))
    | None ->
      fun () ->
        let chosen_row = Compile.eval_row cenv sc.sc_out in
        if not (Relation.mem fd.EC.rel chosen_row) then begin
          let projections =
            List.map
              (fun (l, r) ->
                ( Value.Tup (List.map (fun p -> p cenv) l),
                  Value.Tup (List.map (fun p -> p cenv) r) ))
              sc.sc_fds
          in
          if EC.compatible fd projections then
            raise (Fired (chosen_row, Compile.eval_row cenv sc.sc_head))
        end
  in
  let valid row =
    Limits.tick_candidates limits 1;
    (match rc with
    | Some rc -> rc.Telemetry.candidates <- rc.Telemetry.candidates + 1
    | None -> ());
    if not (Compile.bind sc.sc_bind cenv row) then false
    else begin
      match Compile.run_resolved sc.sc_chain kont with
      | () -> false
      | exception Fired (chosen_row, head_row) ->
        ignore (Relation.add fd.EC.rel chosen_row);
        Limits.tick_derived limits 1;
        if Relation.add head_rel head_row then Limits.tick_derived limits 1;
        true
    end
  in
  fun () ->
    if Option.is_none sc.sc_fd_cols then EC.replay_chosen fd;
    let stage = EC.current_stage db tracker + 1 in
    Compile.set_slot sc.sc_chain sr.stage_slot (Value.Int stage);
    Compile.resolve sc.sc_chain db;
    match Rql.retrieve_least rql ~valid with Some _ -> stage | None -> -1

let eval_choice_clique ~backend ~shadow_mode ~telemetry ~limits ~pool ~compiled db crules
    flat_rules gamma =
  let exits, nexts = List.partition (fun ((cr : EC.crule), _) -> cr.EC.stage = None) crules in
  let srules = List.map (fun (cr, r) -> compile_srule ~compiled cr r) nexts in
  let flat =
    flat_rules @ List.map (fun (cr, r) -> EC.positive_rule cr r) exits
  in
  let sub_cliques = Depgraph.cliques (Depgraph.make flat) in
  let saturators =
    try
      List.map
        (fun sub ->
          Seminaive.make ~allow_clique_negation:true ~telemetry ~limits ~pool ~compiled db
            ~clique:sub flat)
        sub_cliques
    with Invalid_argument msg | Eval.Unsafe msg -> raise (Not_compilable msg)
  in
  let saturate () =
    try List.iter Seminaive.step saturators
    with Invalid_argument msg | Eval.Unsafe msg -> raise (Not_compilable msg)
  in
  let exit_states = List.map (fun (cr, _) -> EC.make_fd_state db cr) exits in
  let staged =
    List.map
      (fun sr ->
        let key_of row = Value.Tup (List.map (fun p -> row.(p)) sr.key_positions) in
        (* Cost of a source row: bind its terms into a scratch residual
           environment and evaluate the compiled cost term.  Compiled
           mode reads projected costs straight out of the row instead —
           physically the same values, and neither the memo table nor
           its per-row entries exist. *)
        let cost_env = Eval.fresh_env sr.residual in
        let cost_of row =
          reset_env cost_env;
          if bind_source sr cost_env row then row_cost sr cost_env
          else invalid_arg "Stage_engine: source row does not match its own atom"
        in
        let cost_cached =
          match (if compiled then sr.cost_pos else None) with
          | Some p -> fun (row : Value.t array) -> row.(p)
          | None ->
            let cost_tbl = Relation.Row_tbl.create 256 in
            fun row ->
              (* [find]/[Not_found] rather than [find_opt]: the heap
                 calls this O(log n) times per pop, and the [Some]
                 boxes add up. *)
              (match Relation.Row_tbl.find cost_tbl row with
              | c -> c
              | exception Not_found ->
                let c = cost_of row in
                Relation.Row_tbl.add cost_tbl row c;
                c)
        in
        let cost_cmp a b =
          if not sr.has_extremum then 0
          else
            let c = Value.compare (cost_cached a) (cost_cached b) in
            if sr.minimize then c else -c
        in
        let stage_of row =
          match sr.stage_positions with
          | [] -> 0
          | p :: _ -> ( match row.(p) with Value.Int i -> i | _ -> 0)
        in
        let shadow = match shadow_mode with `Auto -> sr.shadow | `Off -> false in
        let rql =
          Rql.create ~backend ~lean:compiled ~shadow ~newer_wins:sr.newer_wins ~key:key_of
            ~cost_cmp ~stage:stage_of ()
        in
        (* Relation creation order (source, head, chosen$) is part of
           the canonical output; keep it. *)
        let src_rel = Database.relation db sr.source.pred (List.length sr.source.args) in
        let tracker =
          let pos = match sr.cr.EC.stage with Some (_, p) -> p | None -> assert false in
          ignore (Database.relation db sr.cr.EC.head.pred (List.length sr.cr.EC.head.args));
          { EC.pred = sr.cr.EC.head.pred; pos; mark = 0; maxv = 0 }
        in
        let head_rel =
          Database.relation db sr.cr.EC.head.pred (List.length sr.cr.EC.head.args)
        in
        let fd = EC.make_fd_state db sr.cr in
        let cfire =
          match sr.scc with
          | None -> None
          | Some sc -> Some (make_cfire ~telemetry ~limits db sr sc ~rql ~fd ~tracker ~head_rel)
        in
        { sr; rql; fd; tracker;
          scratch = Eval.fresh_env sr.residual;
          src_mark = 0; src_rel;
          ins = (fun row -> Rql.insert rql row);
          cfire })
      srules
  in
  let sync () =
    if compiled then
      (* Lean variant: the source relation and the insert closure are
         cached in the staged state — nothing per call. *)
      List.iter
        (fun st ->
          Relation.iter_from st.src_rel st.src_mark st.ins;
          st.src_mark <- Relation.cardinal st.src_rel)
        staged
    else
      List.iter
        (fun st ->
          match Database.find db st.sr.source.pred with
          | None -> ()
          | Some rel ->
            Relation.iter_from rel st.src_mark (fun row -> Rql.insert st.rql row);
            st.src_mark <- Relation.cardinal rel)
        staged
  in
  let examined = ref 0 in
  let fire_exit () =
    let rec try_exits i = function
      | [] -> false
      | st :: rest -> (
        match EC.collect_candidates ~idx:i ~limits ~pool db telemetry st None examined with
        | [] -> try_exits (i + 1) rest
        | cand :: _ ->
          EC.fire ~telemetry ~limits db cand;
          incr gamma;
          true)
    in
    try_exits 0 exit_states
  in
  (* Pop-validate-fire for one staged rule; returns true if fired. *)
  let fire_staged st =
    match st.cfire with
    | Some cf ->
      let stage = cf () in
      if stage >= 0 then begin
        incr gamma;
        if Telemetry.enabled telemetry then
          Telemetry.fired telemetry ~stage st.sr.cr.EC.label;
        true
      end
      else false
    | None ->
      EC.replay_chosen st.fd;
      let rc = Telemetry.rule telemetry st.sr.cr.EC.label in
      let stage = EC.current_stage db st.tracker + 1 in
      let stage_value = Some (Value.Int stage) in
      let fired chosen_row head_row =
        ignore (Relation.add st.fd.EC.rel chosen_row);
        Limits.tick_derived limits 1;
        if Database.add_fact db st.sr.cr.EC.head.pred head_row then
          Limits.tick_derived limits 1;
        true
      in
      let valid row =
        (* Every popped source fact is a candidate the engine examines. *)
        Limits.tick_candidates limits 1;
        (match rc with Some rc -> rc.Telemetry.candidates <- rc.Telemetry.candidates + 1 | None -> ());
        let env = st.scratch in
        reset_env env;
        env.(st.sr.stage_slot) <- stage_value;
        if not (bind_source st.sr env row) then false
        else begin
          match
            Eval.run st.sr.residual db env (fun env ->
                let chosen_row = Eval.eval_row env st.sr.c_out in
                if not (Relation.mem st.fd.EC.rel chosen_row) then begin
                  let projections =
                    List.map
                      (fun (l, r) ->
                        ( Value.Tup (List.map (Eval.eval_cterm env) l),
                          Value.Tup (List.map (Eval.eval_cterm env) r) ))
                      st.sr.c_fds
                  in
                  if EC.compatible st.fd projections then
                    raise (Fired (chosen_row, Eval.eval_row env st.sr.c_head))
                end)
          with
          | () -> false
          | exception Fired (chosen_row, head_row) -> fired chosen_row head_row
        end
      in
      (match Rql.retrieve_least st.rql ~valid with
      | Some _ ->
        incr gamma;
        Telemetry.fired telemetry ~stage st.sr.cr.EC.label;
        true
      | None -> false)
  in
  saturate ();
  let rec loop () =
    Limits.tick_step limits;
    if fire_exit () then begin
      saturate ();
      loop ()
    end
    else begin
      sync ();
      let rec try_staged = function
        | [] -> false
        | st :: rest -> if fire_staged st then true else try_staged rest
      in
      if try_staged staged then begin
        saturate ();
        loop ()
      end
    end
  in
  loop ();
  if Telemetry.enabled telemetry then
    List.iter (fun st -> Telemetry.queue telemetry st.sr.cr.EC.label (Rql.stats st.rql)) staged;
  List.map (fun st -> Rql.stats st.rql) staged

(* ------------------------------------------------------------------ *)
(* Program driver                                                      *)
(* ------------------------------------------------------------------ *)

let plan_cliques ?(compiled = false) rules =
  let counter = ref 0 in
  let tagged =
    List.map
      (fun r ->
        if EC.is_choice_rule r then begin
          let i = !counter in
          incr counter;
          `Choice (EC.compile_crule ~compiled i r, r)
        end
        else `Flat r)
      rules
  in
  let graph = Depgraph.make (Rewrite.expand_next rules) in
  List.map
    (fun clique ->
      let crules_in =
        List.filter_map
          (function
            | `Choice ((cr : EC.crule), r) when List.mem cr.EC.head.pred clique -> Some (cr, r)
            | _ -> None)
          tagged
      in
      let flat_in =
        List.filter_map
          (function `Flat r when List.mem (head_pred r) clique -> Some r | _ -> None)
          tagged
      in
      (clique, crules_in, flat_in))
    (Depgraph.cliques graph)

let run_governed ?(backend = `Binary) ?(shadow = `Auto) ?(telemetry = Telemetry.none)
    ?(limits = Limits.unlimited) ?(jobs = 1) ?(compiled = false) ?plan ?db program =
  let pool = Par.get jobs in
  let db = match db with Some db -> db | None -> Database.create () in
  let gamma = ref 0 in
  let rql_stats = ref [] in
  let stats () =
    let sum f = List.fold_left (fun acc (s : Rql.stats) -> acc + f s) 0 !rql_stats in
    let maxq =
      List.fold_left (fun acc (s : Rql.stats) -> max acc s.Rql.max_queue) 0 !rql_stats
    in
    { gamma_steps = !gamma;
      inserted = sum (fun s -> s.Rql.inserted);
      shadowed = sum (fun s -> s.Rql.shadowed);
      stale = sum (fun s -> s.Rql.stale);
      invalid_pops = sum (fun s -> s.Rql.invalid);
      max_queue = maxq }
  in
  Limits.govern ~telemetry limits
    ~partial:(fun () -> (db, stats ()))
    (fun () ->
      (* Compiled mode reorders reorderable rule bodies by the cost
         plan first.  The gate makes this a no-op on any program with
         choice / next rules, so [compile_srule]'s source-atom
         selection always sees the source order. *)
      let program =
        if not compiled then program
        else
          match plan with
          | Some p -> Plan.program p
          | None -> Plan.program (Plan.analyze ~telemetry ~db program)
      in
      let facts, rules = List.partition Ast.is_fact program in
      Database.load_facts db facts;
      List.iteri
        (fun i (clique, crules_in, flat_in) ->
          let label = Printf.sprintf "stratum %d: %s" i (String.concat "," clique) in
          Limits.set_active limits label;
          Telemetry.stratum telemetry label;
          Telemetry.span telemetry label (fun () ->
              if crules_in = [] then begin
                try Seminaive.eval_clique ~telemetry ~limits ~pool ~compiled db ~clique rules
                with Invalid_argument msg | Eval.Unsafe msg -> raise (Not_compilable msg)
              end
              else
                rql_stats :=
                  eval_choice_clique ~backend ~shadow_mode:shadow ~telemetry ~limits ~pool
                    ~compiled db crules_in flat_in gamma
                  @ !rql_stats))
        (plan_cliques ~compiled rules);
      (db, stats ()))

let run ?backend ?shadow ?telemetry ?limits ?jobs ?compiled ?plan ?db program =
  match run_governed ?backend ?shadow ?telemetry ?limits ?jobs ?compiled ?plan ?db program with
  | Limits.Complete x -> x
  | Limits.Partial (_, d) -> raise (Limits.Exhausted d.Limits.violated)

let model ?db program = fst (run ?db program)

let compiled_keys program =
  let _, rules = List.partition Ast.is_fact program in
  List.concat_map
    (fun (_, crules_in, _) ->
      List.filter_map
        (fun ((cr : EC.crule), r) ->
          if cr.EC.stage = None then None
          else
            let sr = compile_srule cr r in
            Some (cr.EC.head.pred, sr.shadow, sr.key_positions))
        crules_in)
    (plan_cliques rules)
