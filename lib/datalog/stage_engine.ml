open Ast
module EC = Engine_core
module Rql = Gbc_ordered.Rql

exception Not_compilable of string

type stats = {
  gamma_steps : int;
  inserted : int;
  shadowed : int;
  stale : int;
  invalid_pops : int;
  max_queue : int;
}

type shadow_mode = [ `Auto | `Off ]

(* ------------------------------------------------------------------ *)
(* Bound facts (local, rule-level)                                     *)
(* ------------------------------------------------------------------ *)

(* Pairs (a, b) with a > b provable from one comparison/equation goal,
   plus (a, b) pin pairs from a = b + 1 (used for newer-wins). *)
let gt_pairs (r : Ast.rule) =
  List.filter_map
    (fun lit ->
      match lit with
      | Rel (Lt, Var a, Var b) -> Some (b, a, false)
      | Rel (Gt, Var a, Var b) -> Some (a, b, false)
      | Rel (Eq, Var a, Binop (Add, Var b, Cst (Value.Int 1)))
      | Rel (Eq, Binop (Add, Var b, Cst (Value.Int 1)), Var a) -> Some (a, b, true)
      | _ -> None)
    r.body

(* ------------------------------------------------------------------ *)
(* Shadow-safety analysis                                              *)
(* ------------------------------------------------------------------ *)

module SS = Set.Make (String)

let tvars ts = SS.of_list (List.concat_map term_vars ts)

(* See DESIGN.md: an argument set D may be dropped from the congruence
   key iff its variables are FD-determined by the remaining key and
   every FD's left-hand side stays inside the key; additionally all
   non-stage source variables (the cost included) must lie in the FD
   closure of the key, so that within a class the cheapest fact is
   always an acceptable representative. *)
let shadow_analysis ~svars ~stagevars ~costvars ~fds =
  let k0 = SS.diff (SS.diff svars stagevars) costvars in
  let lhs_of (l, _) = tvars l and rhs_of (_, r) = tvars r in
  let all_lhs = List.fold_left (fun acc fd -> SS.union acc (lhs_of fd)) SS.empty fds in
  let rec drop d =
    let candidate =
      SS.choose_opt
        (SS.filter
           (fun v ->
             (not (SS.mem v d))
             && (not (SS.mem v all_lhs))
             && List.exists (fun fd -> SS.mem v (rhs_of fd)) fds
             && List.for_all
                  (fun fd ->
                    (not (SS.mem v (rhs_of fd)))
                    || SS.subset (lhs_of fd) (SS.remove v (SS.diff k0 d)))
                  fds)
           k0)
    in
    match candidate with None -> d | Some v -> drop (SS.add v d)
  in
  let d = drop SS.empty in
  let key = SS.diff k0 d in
  let closure =
    let rec go s =
      let s' =
        List.fold_left
          (fun s fd -> if SS.subset (lhs_of fd) s then SS.union s (rhs_of fd) else s)
          s fds
      in
      if SS.equal s s' then s else go s'
    in
    go key
  in
  let safe =
    List.for_all (fun fd -> SS.subset (lhs_of fd) key) fds
    && SS.subset (SS.diff svars stagevars) closure
  in
  (safe, key)

(* ------------------------------------------------------------------ *)
(* Compiled next rules                                                 *)
(* ------------------------------------------------------------------ *)

type srule = {
  cr : EC.crule;
  rule : Ast.rule;
  source : atom;
  residual : Eval.body;
  minimize : bool;  (* meaningful when has_extremum *)
  has_extremum : bool;
  cost : term option;
  key_positions : int list;
  stage_positions : int list;
  shadow : bool;
  newer_wins : bool;
  stage_var : string;
  (* Hot-path forms, resolved against [residual] once at compile time:
     the pop-validate loop binds and evaluates these per candidate row,
     with no per-call AST re-resolution. *)
  stage_slot : int;
  src_pats : Eval.cterm array;  (* source argument terms *)
  c_out : Eval.cterm array;  (* chosen$i tuple terms *)
  c_head : Eval.cterm array;  (* head argument terms *)
  c_fds : (Eval.cterm list * Eval.cterm list) list;
  c_cost : Eval.cterm option;
}

let compile_srule (cr : EC.crule) (r : Ast.rule) =
  let fail msg = raise (Not_compilable (msg ^ ": " ^ Pretty.rule_to_string r)) in
  let stage_var =
    match cr.EC.stage with Some (v, _) -> v | None -> assert false
  in
  (match cr.EC.extrema with
  | [] | [ _ ] -> ()
  | _ -> fail "more than one extremum in a next rule");
  let minimize, cost, has_extremum =
    match cr.EC.extrema with
    | [] -> (true, None, false)
    | [ e ] -> (e.EC.minimize, Some e.EC.cost, true)
    | _ -> assert false
  in
  if not (List.for_all (fun v -> List.mem v cr.EC.vars) (atom_vars r.head)) then
    fail "head not determined by the choice variables";
  let positives = positive_body_atoms r in
  let cost_vars = match cost with None -> [] | Some t -> term_vars t in
  let source =
    match
      List.find_opt
        (fun a -> List.for_all (fun v -> List.mem v (atom_vars a)) cost_vars)
        positives
    with
    | Some a -> a
    | None -> fail "no positive body atom binds the extremum cost"
  in
  (* Residual: the flat body minus the first occurrence of the source. *)
  let removed = ref false in
  let residual_literals =
    List.filter
      (fun lit ->
        match lit with
        | Pos a when (not !removed) && a == source ->
          removed := true;
          false
        | Next _ | Choice _ | Least _ | Most _ -> false
        | _ -> true)
      r.body
  in
  let extra_bound = stage_var :: atom_vars source in
  let residual =
    try Eval.compile_body ~extra_bound residual_literals
    with Eval.Unsafe msg -> fail ("unsafe residual: " ^ msg)
  in
  let pairs = gt_pairs r in
  let is_stage_term = function
    | Var j ->
      List.exists (fun (a, b, _) -> String.equal a stage_var && String.equal b j) pairs
    | _ -> false
  in
  let stage_positions =
    List.mapi (fun i t -> (i, t)) source.args
    |> List.filter_map (fun (i, t) -> if is_stage_term t then Some i else None)
  in
  let newer_wins =
    List.exists
      (fun (a, b, pin) ->
        pin && String.equal a stage_var
        && List.exists
             (fun pos ->
               match List.nth source.args pos with
               | Var j -> String.equal j b
               | _ -> false)
             stage_positions)
      pairs
  in
  let stagevars =
    SS.of_list
      (List.filter_map
         (fun pos -> match List.nth source.args pos with Var j -> Some j | _ -> None)
         stage_positions)
  in
  let safe, key =
    shadow_analysis ~svars:(SS.of_list (atom_vars source)) ~stagevars
      ~costvars:(SS.of_list cost_vars) ~fds:(choice_fds r)
  in
  let shadow = safe && has_extremum in
  let key_positions =
    List.mapi (fun i t -> (i, t)) source.args
    |> List.filter_map (fun (i, t) ->
           if List.mem i stage_positions then None
           else
             let vs = term_vars t in
             if vs = [] then Some i
             else if List.exists (fun v -> SS.mem v key) vs then Some i
             else None)
  in
  let compile_t t =
    try Eval.compile_term residual t
    with Eval.Unsafe msg -> fail ("unsafe residual: " ^ msg)
  in
  { cr; rule = r; source; residual; minimize; has_extremum; cost; key_positions;
    stage_positions; shadow; newer_wins; stage_var;
    stage_slot = Eval.slot residual stage_var;
    src_pats = Array.of_list (List.map compile_t source.args);
    c_out = Array.of_list (List.map compile_t cr.EC.out_terms);
    c_head = Array.of_list (List.map compile_t cr.EC.head.args);
    c_fds =
      List.map
        (fun (l, rr) -> (List.map compile_t l, List.map compile_t rr))
        cr.EC.fds;
    c_cost = Option.map compile_t cost }

(* ------------------------------------------------------------------ *)
(* Matching a source row                                               *)
(* ------------------------------------------------------------------ *)

(* Bind the source atom's compiled argument terms against a stored row,
   writing variable bindings into the residual's environment.  The
   caller owns [env] and resets it between rows. *)
let bind_source sr (env : Eval.env) row = Eval.bind_row env sr.src_pats row

let row_cost sr env =
  match sr.c_cost with None -> Value.Int 0 | Some ct -> Eval.eval_cterm env ct

(* ------------------------------------------------------------------ *)
(* Clique evaluation                                                   *)
(* ------------------------------------------------------------------ *)

type staged = {
  sr : srule;
  rql : (Value.t array, Value.t) Rql.t;
  fd : EC.fd_state;
  tracker : EC.tracker;
  scratch : Eval.env;  (* reusable residual environment for [valid] *)
  mutable src_mark : int;
}

let reset_env (env : Eval.env) = Array.fill env 0 (Array.length env) None

exception Fired of Value.t array * Value.t array (* chosen row, head row *)

let eval_choice_clique ~backend ~shadow_mode ~telemetry ~limits ~pool db crules flat_rules gamma =
  let exits, nexts = List.partition (fun ((cr : EC.crule), _) -> cr.EC.stage = None) crules in
  let srules = List.map (fun (cr, r) -> compile_srule cr r) nexts in
  let flat =
    flat_rules @ List.map (fun (cr, r) -> EC.positive_rule cr r) exits
  in
  let sub_cliques = Depgraph.cliques (Depgraph.make flat) in
  let saturators =
    try
      List.map
        (fun sub ->
          Seminaive.make ~allow_clique_negation:true ~telemetry ~limits ~pool db ~clique:sub flat)
        sub_cliques
    with Invalid_argument msg | Eval.Unsafe msg -> raise (Not_compilable msg)
  in
  let saturate () =
    try List.iter Seminaive.step saturators
    with Invalid_argument msg | Eval.Unsafe msg -> raise (Not_compilable msg)
  in
  let exit_states = List.map (fun (cr, _) -> EC.make_fd_state db cr) exits in
  let staged =
    List.map
      (fun sr ->
        let key_of row = Value.Tup (List.map (fun p -> row.(p)) sr.key_positions) in
        (* Cost of a source row: bind its terms into a scratch residual
           environment and evaluate the compiled cost term. *)
        let cost_env = Eval.fresh_env sr.residual in
        let cost_of row =
          reset_env cost_env;
          if bind_source sr cost_env row then row_cost sr cost_env
          else invalid_arg "Stage_engine: source row does not match its own atom"
        in
        let cost_tbl = Relation.Row_tbl.create 256 in
        let cost_cached row =
          (* [find]/[Not_found] rather than [find_opt]: the heap calls
             this O(log n) times per pop, and the [Some] boxes add up. *)
          match Relation.Row_tbl.find cost_tbl row with
          | c -> c
          | exception Not_found ->
            let c = cost_of row in
            Relation.Row_tbl.add cost_tbl row c;
            c
        in
        let cost_cmp a b =
          if not sr.has_extremum then 0
          else
            let c = Value.compare (cost_cached a) (cost_cached b) in
            if sr.minimize then c else -c
        in
        let stage_of row =
          match sr.stage_positions with
          | [] -> 0
          | p :: _ -> ( match row.(p) with Value.Int i -> i | _ -> 0)
        in
        let shadow = match shadow_mode with `Auto -> sr.shadow | `Off -> false in
        let rql =
          Rql.create ~backend ~shadow ~newer_wins:sr.newer_wins ~key:key_of
            ~cost_cmp ~stage:stage_of ()
        in
        ignore (Database.relation db sr.source.pred (List.length sr.source.args));
        { sr; rql; fd = EC.make_fd_state db sr.cr;
          scratch = Eval.fresh_env sr.residual;
          tracker =
            (let pos = match sr.cr.EC.stage with Some (_, p) -> p | None -> assert false in
             ignore (Database.relation db sr.cr.EC.head.pred (List.length sr.cr.EC.head.args));
             { EC.pred = sr.cr.EC.head.pred; pos; mark = 0; maxv = 0 });
          src_mark = 0 })
      srules
  in
  let sync () =
    List.iter
      (fun st ->
        match Database.find db st.sr.source.pred with
        | None -> ()
        | Some rel ->
          Relation.iter_from rel st.src_mark (fun row -> Rql.insert st.rql row);
          st.src_mark <- Relation.cardinal rel)
      staged
  in
  let examined = ref 0 in
  let fire_exit () =
    let rec try_exits i = function
      | [] -> false
      | st :: rest -> (
        match EC.collect_candidates ~idx:i ~limits ~pool db telemetry st None examined with
        | [] -> try_exits (i + 1) rest
        | cand :: _ ->
          EC.fire ~telemetry ~limits db cand;
          incr gamma;
          true)
    in
    try_exits 0 exit_states
  in
  (* Pop-validate-fire for one staged rule; returns true if fired. *)
  let fire_staged st =
    EC.replay_chosen st.fd;
    let rc = Telemetry.rule telemetry st.sr.cr.EC.label in
    let stage = EC.current_stage db st.tracker + 1 in
    let stage_value = Some (Value.Int stage) in
    let valid row =
      (* Every popped source fact is a candidate the engine examines. *)
      Limits.tick_candidates limits 1;
      (match rc with Some rc -> rc.Telemetry.candidates <- rc.Telemetry.candidates + 1 | None -> ());
      let env = st.scratch in
      reset_env env;
      env.(st.sr.stage_slot) <- stage_value;
      if not (bind_source st.sr env row) then false
      else begin
        match
          Eval.run st.sr.residual db env (fun env ->
              let chosen_row = Eval.eval_row env st.sr.c_out in
              if not (Relation.mem st.fd.EC.rel chosen_row) then begin
                let projections =
                  List.map
                    (fun (l, r) ->
                      ( Value.Tup (List.map (Eval.eval_cterm env) l),
                        Value.Tup (List.map (Eval.eval_cterm env) r) ))
                    st.sr.c_fds
                in
                if EC.compatible st.fd projections then
                  raise (Fired (chosen_row, Eval.eval_row env st.sr.c_head))
              end)
        with
        | () -> false
        | exception Fired (chosen_row, head_row) ->
          ignore (Relation.add st.fd.EC.rel chosen_row);
          Limits.tick_derived limits 1;
          if Database.add_fact db st.sr.cr.EC.head.pred head_row then
            Limits.tick_derived limits 1;
          true
      end
    in
    match Rql.retrieve_least st.rql ~valid with
    | Some _ ->
      incr gamma;
      Telemetry.fired telemetry ~stage st.sr.cr.EC.label;
      true
    | None -> false
  in
  saturate ();
  let rec loop () =
    Limits.tick_step limits;
    if fire_exit () then begin
      saturate ();
      loop ()
    end
    else begin
      sync ();
      let rec try_staged = function
        | [] -> false
        | st :: rest -> if fire_staged st then true else try_staged rest
      in
      if try_staged staged then begin
        saturate ();
        loop ()
      end
    end
  in
  loop ();
  if Telemetry.enabled telemetry then
    List.iter (fun st -> Telemetry.queue telemetry st.sr.cr.EC.label (Rql.stats st.rql)) staged;
  List.map (fun st -> Rql.stats st.rql) staged

(* ------------------------------------------------------------------ *)
(* Program driver                                                      *)
(* ------------------------------------------------------------------ *)

let plan_cliques rules =
  let counter = ref 0 in
  let compiled =
    List.map
      (fun r ->
        if EC.is_choice_rule r then begin
          let i = !counter in
          incr counter;
          `Choice (EC.compile_crule i r, r)
        end
        else `Flat r)
      rules
  in
  let graph = Depgraph.make (Rewrite.expand_next rules) in
  List.map
    (fun clique ->
      let crules_in =
        List.filter_map
          (function
            | `Choice ((cr : EC.crule), r) when List.mem cr.EC.head.pred clique -> Some (cr, r)
            | _ -> None)
          compiled
      in
      let flat_in =
        List.filter_map
          (function `Flat r when List.mem (head_pred r) clique -> Some r | _ -> None)
          compiled
      in
      (clique, crules_in, flat_in))
    (Depgraph.cliques graph)

let run_governed ?(backend = `Binary) ?(shadow = `Auto) ?(telemetry = Telemetry.none)
    ?(limits = Limits.unlimited) ?(jobs = 1) ?db program =
  let pool = Par.get jobs in
  let db = match db with Some db -> db | None -> Database.create () in
  let gamma = ref 0 in
  let rql_stats = ref [] in
  let stats () =
    let sum f = List.fold_left (fun acc (s : Rql.stats) -> acc + f s) 0 !rql_stats in
    let maxq =
      List.fold_left (fun acc (s : Rql.stats) -> max acc s.Rql.max_queue) 0 !rql_stats
    in
    { gamma_steps = !gamma;
      inserted = sum (fun s -> s.Rql.inserted);
      shadowed = sum (fun s -> s.Rql.shadowed);
      stale = sum (fun s -> s.Rql.stale);
      invalid_pops = sum (fun s -> s.Rql.invalid);
      max_queue = maxq }
  in
  Limits.govern ~telemetry limits
    ~partial:(fun () -> (db, stats ()))
    (fun () ->
      let facts, rules = List.partition Ast.is_fact program in
      Database.load_facts db facts;
      List.iteri
        (fun i (clique, crules_in, flat_in) ->
          let label = Printf.sprintf "stratum %d: %s" i (String.concat "," clique) in
          Limits.set_active limits label;
          Telemetry.stratum telemetry label;
          Telemetry.span telemetry label (fun () ->
              if crules_in = [] then begin
                try Seminaive.eval_clique ~telemetry ~limits ~pool db ~clique rules
                with Invalid_argument msg | Eval.Unsafe msg -> raise (Not_compilable msg)
              end
              else
                rql_stats :=
                  eval_choice_clique ~backend ~shadow_mode:shadow ~telemetry ~limits ~pool db
                    crules_in flat_in gamma
                  @ !rql_stats))
        (plan_cliques rules);
      (db, stats ()))

let run ?backend ?shadow ?telemetry ?limits ?jobs ?db program =
  match run_governed ?backend ?shadow ?telemetry ?limits ?jobs ?db program with
  | Limits.Complete x -> x
  | Limits.Partial (_, d) -> raise (Limits.Exhausted d.Limits.violated)

let model ?db program = fst (run ?db program)

let compiled_keys program =
  let _, rules = List.partition Ast.is_fact program in
  List.concat_map
    (fun (_, crules_in, _) ->
      List.filter_map
        (fun ((cr : EC.crule), r) ->
          if cr.EC.stage = None then None
          else
            let sr = compile_srule cr r in
            Some (cr.EC.head.pred, sr.shadow, sr.key_positions))
        crules_in)
    (plan_cliques rules)
