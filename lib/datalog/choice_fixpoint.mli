(** The reference engine: the paper's Choice Fixpoint procedure
    (Section 2, Lemma 1) specialized per Section 4 to programs whose
    cliques are evaluated stratum by stratum.

    For every clique, in topological order:
    - Horn / stratified cliques are saturated semi-naively;
    - cliques containing [choice] or [next] rules run the alternating
      fixpoint [S' := Q^inf(gamma(S))]: the one-consequence operator
      [gamma] evaluates the chosen-rule bodies against the current
      database (FD-filtering against the memoized [chosen_i] relations,
      then applying the rule's extrema), fires {e one} new chosen fact,
      and [Q^inf] re-saturates the clique's flat rules (including the
      rewritten positive rules [head <- body, chosen_i(V)]).

    [next] rules are evaluated with the stage variable bound directly
    to [max stage + 1] of the head predicate; this is observationally
    identical to the paper's macro-expansion (candidates at earlier
    stages are always rejected by the stage FDs) and avoids enumerating
    dead stages.

    The [chosen_i] relations are stored in the result database under
    the same names and layouts that {!Rewrite.expand_choice} assigns,
    so a produced model can be handed directly to {!Stable.is_stable}.

    Candidates are re-derived from scratch at every gamma step — this
    engine is the semantics reference and the ablation baseline (A1);
    {!Stage_engine} is the optimized implementation. *)

type policy =
  | First  (** deterministic: first rule in program order, first candidate in derivation order *)
  | Random of int  (** uniform over candidates, seeded *)

type stats = {
  gamma_steps : int;  (** chosen facts fired *)
  candidates_examined : int;  (** across all gamma steps *)
}

exception Unsupported of string
(** Raised when a clique cannot be evaluated: negation or extrema over
    a recursive clique with no choice rules, unsafe rules, etc. *)

val run :
  ?policy:policy ->
  ?telemetry:Telemetry.t ->
  ?limits:Limits.t ->
  ?jobs:int ->
  ?compiled:bool ->
  ?plan:Plan.t ->
  ?db:Database.t ->
  Ast.program ->
  Database.t * stats
(** Evaluate the program (facts included) on top of [db] (fresh when
    omitted; mutated in place).  Returns one choice model.  When
    [telemetry] is an enabled collector, per-rule counters, delta sizes
    and per-stratum spans are recorded into it.  [jobs] > 1 shards flat
    saturation and gamma candidate enumeration across a domain pool
    ({!Par.get}) with merge orders chosen so the model — and the
    telemetry counters — are byte-identical to [jobs = 1]; each gamma
    step still fires exactly one chosen fact, sequentially.

    [compiled] (default [false]) runs every rule body as an
    ahead-of-time {!Compile} closure chain over the cost-planned join
    order ([plan] when given, else {!Plan.analyze} on the program) —
    byte-identical models, less allocation per tuple (see
    docs/INTERNALS.md, "Compiled execution").
    @raise Limits.Exhausted when [limits] trips a budget; use
    {!run_governed} to receive the partial database instead. *)

val run_governed :
  ?policy:policy ->
  ?telemetry:Telemetry.t ->
  ?limits:Limits.t ->
  ?jobs:int ->
  ?compiled:bool ->
  ?plan:Plan.t ->
  ?db:Database.t ->
  Ast.program ->
  (Database.t * stats) Limits.outcome
(** Like {!run}, but budget exhaustion and cancellation are returned as
    {!Limits.Partial} carrying the consistent partial database derived
    so far plus a diagnostics snapshot, instead of an exception.  A
    budget tripped inside a parallel region aborts every shard before
    anything is merged, so the partial database is consistent. *)

val model : ?policy:policy -> ?db:Database.t -> Ast.program -> Database.t
(** {!run} without the statistics. *)

val enumerate :
  ?max_models:int -> ?limits:Limits.t -> ?db:Database.t -> Ast.program -> Database.t list
(** All choice models, by depth-first search over the gamma choices
    with intermediate-state deduplication (different firing orders
    reaching the same database are explored once).  Still exponential
    in the worst case — intended for the small instances used in tests
    (Lemma 2's non-deterministic completeness).  Stops early after
    [max_models] distinct models (default 10_000). *)

val find :
  ?limits:Limits.t ->
  ?db:Database.t ->
  accept:(Database.t -> bool) ->
  Ast.program ->
  Database.t option
(** Don't-know non-determinism: search the choice models depth-first
    and return the first one satisfying [accept] — e.g. "an assignment
    covering every student", which greedy-first gamma may miss. *)
