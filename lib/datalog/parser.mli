(** Recursive-descent parser for the surface syntax.

    Grammar sketch (see README for the full reference):
    {v
    program  ::= clause*
    clause   ::= atom ( ("<-" | ":-") literals )? "."
    literals ::= literal ("," literal)*
    literal  ::= "not" atom
               | "choice" "(" group "," group ")"
               | ("least" | "most") "(" expr ("," group)? ")"
               | "next" "(" VAR ")"
               | expr (cmp expr)?          -- atom when no comparator follows
    group    ::= "(" exprs? ")" | expr
    expr     ::= arith over INT, VAR, "_", lident, strings, tuples,
                 compound terms, max(_,_), min(_,_)
    v}

    Anonymous variables [_] are expanded to fresh variables. *)

exception Error of string * Lexer.pos
(** Parse (and wrapped lexical) failures, with the source position of
    the offending token.  Failures with no meaningful location carry
    line 0; {!Gbc_error} renders both forms uniformly. *)

val parse_program : string -> Ast.program
val parse_rule : string -> Ast.rule
(** Parse a single clause (trailing dot optional). *)

val parse_term : string -> Ast.term
