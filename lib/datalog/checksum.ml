(* CRC-32 (IEEE 802.3): reflected, polynomial 0xEDB88320, init and
   final xor 0xFFFFFFFF.  The byte-at-a-time table is built once; all
   arithmetic stays within 32 bits, so native 63-bit ints are safe. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Checksum.update: range out of bounds";
  let t = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := Array.unsafe_get t ((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let sub_string s ~pos ~len = update 0 s ~pos ~len
let string s = update 0 s ~pos:0 ~len:(String.length s)
