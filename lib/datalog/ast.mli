(** Abstract syntax of Datalog extended with the paper's meta-level
    constructs: [choice], [least], [most] and [next]. *)

type binop = Add | Sub | Mul | Max | Min

type term =
  | Var of string  (** logical variable (capitalized in the surface syntax) *)
  | Cst of Value.t  (** constant *)
  | Cmp of string * term list  (** compound term [t(X, Y)]; name [""] for tuples *)
  | Binop of binop * term * term  (** interpreted arithmetic, e.g. [I1 + 1] *)

type cmp_op = Lt | Le | Gt | Ge | Eq | Ne
type agg_op = Count | Sum

type atom = { pred : string; args : term list }

type literal =
  | Pos of atom
  | Neg of atom
  | Rel of cmp_op * term * term
      (** comparison, or binding equality when one side is an unbound var *)
  | Choice of term list * term list
      (** [choice((X..), (Y..))]: FD from left tuple to right tuple *)
  | Least of term * term list  (** [least(C, Keys)] *)
  | Most of term * term list  (** [most(C, Keys)] *)
  | Agg of agg_op * string * term * term list
      (** [count(N, E, Keys)] / [sum(N, E, Keys)]: bind [N] to the
          count (sum) of distinct values of [E] among the solutions of
          the rule's flat body, grouped by [Keys] — LDL-style
          aggregates, for non-recursive grouping rules *)
  | Next of string  (** [next(I)], [I] the stage variable *)

type rule = { head : atom; body : literal list }

type program = rule list

val atom : string -> term list -> atom
val rule : atom -> literal list -> rule
val fact : string -> Value.t list -> rule

val is_fact : rule -> bool
(** True when the body is empty and the head is ground. *)

val var : string -> term
val int : int -> term
val sym : string -> term

val term_vars : term -> string list
(** Variables of a term, each listed once, in first-occurrence order.
    The anonymous variable ["_"] is excluded everywhere below. *)

val literal_vars : literal -> string list
val atom_vars : atom -> string list
val rule_vars : rule -> string list

val positive_body_atoms : rule -> atom list
val negative_body_atoms : rule -> atom list

val body_preds : rule -> string list
(** Predicate names referenced (positively or negatively) in the body. *)

val head_pred : rule -> string

val has_next : rule -> bool
val has_choice : rule -> bool
val has_extrema : rule -> bool
val has_agg : rule -> bool

val rename_rule : (string -> string) -> rule -> rule
(** Apply a variable renaming throughout a rule. *)

val term_is_ground : term -> bool
val term_to_value : term -> Value.t
(** @raise Invalid_argument on non-ground or arithmetic terms. *)

val value_to_term : Value.t -> term

val choice_fds : rule -> (term list * term list) list
(** All [choice] goals of the rule, in order. *)

val fresh_var : unit -> string
(** A globally fresh variable name (used by rewritings and the parser's
    anonymous-variable expansion). *)
