type policy = Engine_core.policy = First | Random of int
type stats = Engine_core.stats = { gamma_steps : int; candidates_examined : int }

exception Unsupported = Engine_core.Unsupported

let run = Engine_core.run
let run_governed = Engine_core.run_governed
let model = Engine_core.model
let enumerate = Engine_core.enumerate
let find = Engine_core.find
