(** Ahead-of-time compilation of planned rule bodies into closure
    chains — the [--compiled] execution path.

    A chain executes exactly the steps of its {!Eval.body}, in the
    same order, probing the same indexes, enumerating rows in the same
    insertion order — so a compiled engine produces byte-identical
    models to the interpreter.  What changes is the per-tuple cost:
    bindings are direct [Value.t array] stores (no option boxing), row
    obligations are statically-resolved opcodes, probes carry a static
    mask and a reusable key buffer, and relations are resolved once per
    execution instead of once per enclosing solution.

    A chain owns mutable buffers: never share one instance across
    concurrent executors.  Shards take {!clone}s and run read-only via
    {!run_slice} after the coordinator called {!prepare_indexes} —
    the same contract as the interpreter's {!Eval.run_slice}. *)

type env = Value.t array

type t

val of_body : ?bound:int list -> Eval.body -> t
(** Compile a planned body.  [bound] lists the environment slots the
    caller promises to set before every {!run} — the slots of the
    body's [extra_bound] variables.  The static analysis is exact only
    under that promise. *)

val clone : t -> t
(** A fresh instance of the same plan: private environment and
    buffers, for one shard. *)

val env : t -> env
val set_slot : t -> int -> Value.t -> unit
val body : t -> Eval.body

val run : t -> Database.t -> (unit -> unit) -> unit
(** [run t db k] calls [k] once per satisfying assignment, with the
    bindings readable in [env t] (valid only during the callback).
    Any [bound] slots must already be set. *)

val resolve : t -> Database.t -> unit
(** Re-resolve the chain's scanned relations against [db].  {!run}
    does this implicitly; hot loops that execute the same chain many
    times between database mutations can resolve once and use
    {!run_resolved} per execution instead. *)

val run_resolved : t -> (unit -> unit) -> unit
(** Like {!run} but reuses the relations from the last {!resolve} (or
    {!run}) — the caller promises the database's relation map has not
    changed since.  Allocation-free apart from the chain's own work. *)

val shardable : t -> bool
val prepare_indexes : t -> Database.t -> unit

val shard_scan : t -> Database.t -> Relation.slice option
(** Resolve and probe the first scan, returning the slice of matching
    rows ([None] when the relation does not exist).  Sequential — may
    build the probed index. *)

val run_slice : t -> Database.t -> Relation.slice -> int -> int -> (unit -> unit) -> unit
(** Like {!run} but the first scan's rows are drawn from the slice
    range [lo, hi) and all probes are read-only.  [t] must be a
    private {!clone} of the calling shard. *)

(** {2 Engine-side programs over a chain's environment}

    The engines evaluate heads, costs, keys and FD projections per
    solution.  These compile the corresponding {!Eval.cterm}s against
    the chain's end-of-body bound set into direct evaluators over the
    unboxed environment. *)

type value_prog = env -> Value.t

val compile_value : t -> Eval.cterm -> value_prog
val compile_row : t -> Eval.cterm array -> value_prog array
val eval_row : env -> value_prog array -> Value.t array

type binder

val compile_binder : bound:int list -> Eval.cterm array -> binder
(** Static form of {!Eval.bind_row}: match compiled argument terms
    against a ground row, binding slots that are unbound given that
    exactly [bound] is set at bind time. *)

val bind : binder -> env -> Value.t array -> bool
