(* Global hash-consing of symbol and string payloads.

   Every [Value.Sym]/[Value.Str] payload is an id into this table, so
   equality and hashing on symbols are integer operations on the hot
   path.  String order is preserved through a rank table: [compare]
   looks ids up in a permutation sorted by [String.compare] that is
   rebuilt lazily whenever a comparison touches an id interned after
   the last rebuild.  A stale ranking is still correct for the ids it
   covers — inserting new strings never reorders old ones relative to
   each other — so rebuilds only trigger on comparisons against fresh
   symbols, which in practice means at most once after each parse/load
   phase.

   The table is shared by every domain in the process: gbcd evaluates
   independent sessions on a pool of domains, and two sessions
   interning the same new symbol concurrently must agree on its id.
   All writes happen under [lock]; [count] is the publication
   frontier — it is advanced (an atomic release) only after the string
   is in place, so the lock-free readers [resolve] and [compare_ids]
   that observe [id < count] (an acquire) also observe the string and
   the array generation that holds it.  Ids below an observed [count]
   never change, so reading a stale [strings] array is harmless. *)

let initial = 1024

let lock = Mutex.create ()

(* Written only under [lock]. *)
let strings = ref (Array.make initial "")
let tbl : (string, int) Hashtbl.t = Hashtbl.create initial

let count = Atomic.make 0

let size () = Atomic.get count

let intern s =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt tbl s with
      | Some id -> id
      | None ->
        let id = Atomic.get count in
        if id = Array.length !strings then begin
          let bigger = Array.make (2 * id) "" in
          Array.blit !strings 0 bigger 0 id;
          strings := bigger
        end;
        !strings.(id) <- s;
        Hashtbl.add tbl s id;
        Atomic.set count (id + 1);
        id)

let resolve id =
  if id < 0 || id >= Atomic.get count then
    invalid_arg (Printf.sprintf "Interner.resolve: unknown id %d" id);
  !strings.(id)

(* The canonical (first-interned) copy of [s]: token streams share one
   string per distinct identifier instead of one fresh [String.sub]
   per occurrence. *)
let canonical s = resolve (intern s)

(* [ord.(id)] ranks [strings.(id)] by [String.compare]; valid for ids
   below [upto].  Swapped in atomically as one pair so readers never
   see a fresh bound against a stale permutation. *)
type ranking = { ord : int array; upto : int }

let ranking = Atomic.make { ord = [||]; upto = 0 }

let rebuild_order () =
  Mutex.protect lock (fun () ->
      let n = Atomic.get count in
      let ss = !strings in
      let ids = Array.init n Fun.id in
      Array.sort (fun a b -> String.compare ss.(a) ss.(b)) ids;
      let ord = Array.make n 0 in
      Array.iteri (fun rank id -> ord.(id) <- rank) ids;
      Atomic.set ranking { ord; upto = n })

let rec compare_ids a b =
  if a = b then 0
  else begin
    let r = Atomic.get ranking in
    if a < r.upto && b < r.upto then Int.compare r.ord.(a) r.ord.(b)
    else begin
      (* [a] and [b] are valid ids, so they sit below the [count] the
         rebuild snapshots; [upto] only grows, hence one retry. *)
      rebuild_order ();
      compare_ids a b
    end
  end
