(* Global hash-consing of symbol and string payloads.

   Every [Value.Sym]/[Value.Str] payload is an id into this table, so
   equality and hashing on symbols are integer operations on the hot
   path.  String order is preserved through a rank table: [compare]
   looks ids up in [order], a permutation sorted by [String.compare]
   that is rebuilt lazily whenever a comparison touches an id interned
   after the last rebuild.  A stale ranking is still correct for the
   ids it covers — inserting new strings never reorders old ones
   relative to each other — so rebuilds only trigger on comparisons
   against fresh symbols, which in practice means at most once after
   each parse/load phase. *)

let initial = 1024

let strings = ref (Array.make initial "")
let count = ref 0
let tbl : (string, int) Hashtbl.t = Hashtbl.create initial

(* [order.(id)] ranks [strings.(id)] by [String.compare]; valid for
   ids below [covered]. *)
let order = ref [||]
let covered = ref 0

let size () = !count

let intern s =
  match Hashtbl.find_opt tbl s with
  | Some id -> id
  | None ->
    let id = !count in
    if id = Array.length !strings then begin
      let bigger = Array.make (2 * id) "" in
      Array.blit !strings 0 bigger 0 id;
      strings := bigger
    end;
    !strings.(id) <- s;
    count := id + 1;
    Hashtbl.add tbl s id;
    id

let resolve id =
  if id < 0 || id >= !count then
    invalid_arg (Printf.sprintf "Interner.resolve: unknown id %d" id);
  !strings.(id)

(* The canonical (first-interned) copy of [s]: token streams share one
   string per distinct identifier instead of one fresh [String.sub]
   per occurrence. *)
let canonical s = resolve (intern s)

let rebuild_order () =
  let n = !count in
  let ss = !strings in
  let ids = Array.init n Fun.id in
  Array.sort (fun a b -> String.compare ss.(a) ss.(b)) ids;
  let ord = Array.make n 0 in
  Array.iteri (fun rank id -> ord.(id) <- rank) ids;
  order := ord;
  covered := n

let compare_ids a b =
  if a = b then 0
  else begin
    if a >= !covered || b >= !covered then rebuild_order ();
    Int.compare !order.(a) !order.(b)
  end
