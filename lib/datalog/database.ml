type t = {
  relations : (string, Relation.t) Hashtbl.t;
  mutable order : string list; (* creation order, reversed *)
}

let create () = { relations = Hashtbl.create 32; order = [] }

let relation db pred arity =
  match Hashtbl.find_opt db.relations pred with
  | Some r ->
    if Relation.arity r <> arity then
      invalid_arg
        (Printf.sprintf "Database.relation: %s used with arity %d but declared with %d" pred arity
           (Relation.arity r));
    r
  | None ->
    let r = Relation.create pred arity in
    Hashtbl.add db.relations pred r;
    db.order <- pred :: db.order;
    r

let find db pred = Hashtbl.find_opt db.relations pred

let add_fact db pred row = Relation.add (relation db pred (Array.length row)) row

let mem_fact db pred row =
  match find db pred with
  | None -> false
  | Some r -> Relation.arity r = Array.length row && Relation.mem r row

let load_facts db rules =
  List.iter
    (fun r ->
      if not (Ast.is_fact r) then
        invalid_arg ("Database.load_facts: not a ground fact: " ^ Pretty.rule_to_string r);
      let row = Array.of_list (List.map Ast.term_to_value r.Ast.head.Ast.args) in
      ignore (add_fact db r.Ast.head.Ast.pred row))
    rules

let preds db = List.rev db.order

let cardinal db =
  Hashtbl.fold (fun _ r acc -> acc + Relation.cardinal r) db.relations 0

let set_relation db name r =
  if not (Hashtbl.mem db.relations name) then db.order <- name :: db.order;
  Hashtbl.replace db.relations name r

let remove_relation db name =
  Hashtbl.remove db.relations name;
  db.order <- List.filter (fun p -> not (String.equal p name)) db.order

let copy db =
  let relations = Hashtbl.create 32 in
  Hashtbl.iter (fun name r -> Hashtbl.add relations name (Relation.copy r)) db.relations;
  { relations; order = db.order }

let facts_of db pred =
  match find db pred with None -> [] | Some r -> Relation.to_list r

let row_compare a b =
  let rec go i =
    if i = Array.length a then 0
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  let c = compare (Array.length a) (Array.length b) in
  if c <> 0 then c else go 0

let pp fmt db =
  let preds = List.sort String.compare (preds db) in
  List.iter
    (fun pred ->
      let rows = List.sort row_compare (facts_of db pred) in
      List.iter
        (fun row ->
          Format.fprintf fmt "%s(%a).@." pred
            (Format.pp_print_list
               ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
               Value.pp)
            (Array.to_list row))
        rows)
    preds

let equal_on a b preds =
  List.for_all
    (fun pred ->
      let ra = facts_of a pred and rb = facts_of b pred in
      let sort = List.sort row_compare in
      List.length ra = List.length rb
      && List.for_all2 (fun x y -> row_compare x y = 0) (sort ra) (sort rb))
    preds
