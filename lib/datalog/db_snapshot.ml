(* Database <-> bytes, with a local symbol table.

   Two stream formats share the decoder.  Version 2 (current) is
   framed:

     u32 magic          0x47424332 "GBC2"
     u8  version        2
     u32 nsyms                      local symbol table
     nsyms x (u32 len, bytes)       local id 0, 1, ... in order
     u32 npreds
     per predicate:
       u32 len, bytes               name
       u32 arity
       u32 nrows
       u8  repr                     0 boxed, 1 flat
       repr 0: nrows x arity x value          rows in insertion order
       repr 1: (nrows * arity) x i64 cell     raw flat cells

     value := u8 tag
       0  Int  i64
       1  Sym  u32 local id
       2  Str  u32 local id
       3  Tup  u32 count, values
       4  App  (u32 len, bytes) name, u32 count, values

   A flat relation's cell store is dumped as one run of i64s — no per
   value tag bytes, and the reader rebuilds the relation with a single
   blit plus a membership rehash instead of row-at-a-time inserts.
   Cells use the in-memory encoding ([i lsl 1] for ints,
   [(id lsl 1) lor 1] for symbols) with symbol ids rewritten through
   the local table on both sides.

   Version 1 streams (everything before the magic existed) start
   directly at the [u32 nsyms] field and encode every relation with
   repr-0 rows and no repr byte.  The reader keys on the leading u32:
   the magic value as an nsyms count would promise a ~1.2 G-entry
   symbol table, which the count plausibility check rejects for any
   stream small enough to be ambiguous.  {!write_v1} is kept so tests
   can exercise the legacy decode path.

   The global interner allocates ids in first-sight order, which is a
   property of the process, not of the data — hence the local table:
   the writer maps global ids to dense local ones, the reader interns
   the strings back and maps local ids to whatever the current process
   says. *)

exception Corrupt of string

let magic = 0x47424332 (* "GBC2" *)
let version = 2

(* ---------------- writing ---------------- *)

let w_u8 b n = Buffer.add_uint8 b (n land 0xff)
let w_u32 b n = Buffer.add_int32_be b (Int32.of_int n)
let w_i64 b n = Buffer.add_int64_be b (Int64.of_int n)

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

type enc = {
  locals : (int, int) Hashtbl.t;  (* global interner id -> local id *)
  mutable syms_rev : string list;
  mutable nsyms : int;
}

let local enc gid =
  match Hashtbl.find_opt enc.locals gid with
  | Some l -> l
  | None ->
    let l = enc.nsyms in
    Hashtbl.add enc.locals gid l;
    enc.syms_rev <- Interner.resolve gid :: enc.syms_rev;
    enc.nsyms <- l + 1;
    l

let rec w_value enc b = function
  | Value.Int i ->
    w_u8 b 0;
    w_i64 b i
  | Value.Sym id ->
    w_u8 b 1;
    w_u32 b (local enc id)
  | Value.Str id ->
    w_u8 b 2;
    w_u32 b (local enc id)
  | Value.Tup xs ->
    w_u8 b 3;
    w_u32 b (List.length xs);
    List.iter (w_value enc b) xs
  | Value.App (f, xs) ->
    w_u8 b 4;
    w_str b f;
    w_u32 b (List.length xs);
    List.iter (w_value enc b) xs

let w_boxed_rows enc body rel =
  Relation.iter rel (fun row -> Array.iter (fun v -> w_value enc body v) row)

(* One i64 per cell.  Int cells travel in their in-memory encoding;
   sym cells are re-encoded with the local id. *)
let w_flat_cells enc body rel cells =
  let n = Relation.cardinal rel * Relation.arity rel in
  for i = 0 to n - 1 do
    let c = Array.unsafe_get cells i in
    if Relation.cell_is_sym c then w_i64 body (Relation.sym_cell (local enc (Relation.cell_sym c)))
    else w_i64 body c
  done

let write_body ~flat buf db =
  let enc = { locals = Hashtbl.create 64; syms_rev = []; nsyms = 0 } in
  (* rows go to a scratch buffer first: the symbol table they populate
     must precede them in the stream *)
  let body = Buffer.create 4096 in
  let preds = Database.preds db in
  w_u32 body (List.length preds);
  List.iter
    (fun pred ->
      let rel = Option.get (Database.find db pred) in
      w_str body pred;
      w_u32 body (Relation.arity rel);
      w_u32 body (Relation.cardinal rel);
      if flat then
        match Relation.flat_cells rel with
        | Some cells ->
          w_u8 body 1;
          w_flat_cells enc body rel cells
        | None ->
          w_u8 body 0;
          w_boxed_rows enc body rel
      else w_boxed_rows enc body rel)
    preds;
  w_u32 buf enc.nsyms;
  List.iter (fun s -> w_str buf s) (List.rev enc.syms_rev);
  Buffer.add_buffer buf body

let write buf db =
  w_u32 buf magic;
  w_u8 buf version;
  write_body ~flat:true buf db

let write_v1 buf db = write_body ~flat:false buf db

(* ---------------- reading ---------------- *)

type reader = { src : string; mutable pos : int }

let need rd n what =
  if n < 0 || rd.pos + n > String.length rd.src then
    raise (Corrupt (Printf.sprintf "truncated %s at offset %d" what rd.pos))

let r_u8 rd what =
  need rd 1 what;
  let v = Char.code rd.src.[rd.pos] in
  rd.pos <- rd.pos + 1;
  v

let r_u32 rd what =
  need rd 4 what;
  let v = Int32.to_int (String.get_int32_be rd.src rd.pos) in
  rd.pos <- rd.pos + 4;
  if v < 0 then raise (Corrupt (Printf.sprintf "negative count in %s" what));
  v

let r_i64 rd what =
  need rd 8 what;
  let v = Int64.to_int (String.get_int64_be rd.src rd.pos) in
  rd.pos <- rd.pos + 8;
  v

(* a count of n promises at least n further bytes; reject impossible
   counts before allocating *)
let r_count rd what =
  let n = r_u32 rd what in
  if n > String.length rd.src - rd.pos then
    raise (Corrupt (Printf.sprintf "impossible count %d in %s" n what));
  n

let r_str rd what =
  let n = r_count rd what in
  let s = String.sub rd.src rd.pos n in
  rd.pos <- rd.pos + n;
  s

let rec r_value syms rd =
  match r_u8 rd "value" with
  | 0 -> Value.Int (r_i64 rd "int value")
  | 1 -> Value.Sym (r_sym syms rd)
  | 2 -> Value.Str (r_sym syms rd)
  | 3 ->
    let n = r_count rd "tuple" in
    Value.Tup (List.init n (fun _ -> r_value syms rd))
  | 4 ->
    let f = r_str rd "constructor name" in
    let n = r_count rd "constructor args" in
    Value.App (f, List.init n (fun _ -> r_value syms rd))
  | t -> raise (Corrupt (Printf.sprintf "unknown value tag %d at offset %d" t (rd.pos - 1)))

and r_sym syms rd =
  let l = r_u32 rd "symbol id" in
  if l >= Array.length syms then
    raise (Corrupt (Printf.sprintf "local symbol id %d out of range" l));
  syms.(l)

let r_boxed_rows syms rd rel arity nrows =
  for _ = 1 to nrows do
    let row = Array.init arity (fun _ -> r_value syms rd) in
    ignore (Relation.add rel row)
  done

(* The whole cell store in one pass: a flat row is 8 * arity bytes, so
   one length check up front covers every cell. *)
let r_flat_cells syms rd name arity nrows =
  if arity = 0 then raise (Corrupt (Printf.sprintf "flat nullary predicate %s" name));
  let n = nrows * arity in
  need rd (8 * n) "flat cells";
  let cells =
    Array.init n (fun _ ->
        let c = r_i64 rd "flat cell" in
        if Relation.cell_is_sym c then begin
          let l = Relation.cell_sym c in
          if l >= Array.length syms then
            raise (Corrupt (Printf.sprintf "local symbol id %d out of range" l));
          Relation.sym_cell syms.(l)
        end
        else c)
  in
  Relation.of_flat_cells name arity cells nrows

(* body shared by both versions: v2 streams carry a repr byte per
   predicate, v1 streams are always boxed rows *)
let read_body ~v2 rd =
  let nsyms = r_count rd "symbol table" in
  (* re-intern: local id -> this process's global id *)
  let syms = Array.init nsyms (fun _ -> Interner.intern (r_str rd "symbol")) in
  let npreds = r_count rd "predicate count" in
  let db = Database.create () in
  for _ = 1 to npreds do
    let name = r_str rd "predicate name" in
    let arity = r_u32 rd "arity" in
    if arity > 0xFFFF then raise (Corrupt (Printf.sprintf "implausible arity %d" arity));
    let nrows = r_count rd "row count" in
    let repr = if v2 then r_u8 rd "representation tag" else 0 in
    match repr with
    | 0 ->
      let rel =
        try Database.relation db name arity
        with Invalid_argument msg -> raise (Corrupt msg)
      in
      r_boxed_rows syms rd rel arity nrows
    | 1 ->
      if Database.find db name <> None then
        raise (Corrupt (Printf.sprintf "duplicate flat predicate %s" name));
      let rel =
        try r_flat_cells syms rd name arity nrows
        with Invalid_argument msg -> raise (Corrupt msg)
      in
      Database.set_relation db name rel
    | t -> raise (Corrupt (Printf.sprintf "unknown representation tag %d" t))
  done;
  (db, rd.pos)

let read s pos =
  let rd = { src = s; pos } in
  if String.length s - pos >= 5 && Int32.to_int (String.get_int32_be s pos) = magic then begin
    rd.pos <- pos + 4;
    let v = r_u8 rd "format version" in
    if v <> version then raise (Corrupt (Printf.sprintf "unsupported snapshot format %d" v));
    read_body ~v2:true rd
  end
  else read_body ~v2:false rd
