(* Cost-based join planning for the compiled execution path.

   The planner estimates, for every rule, how many rows each positive
   atom would enumerate if scanned at a given point, and greedily
   orders the atoms cheapest-first.  Estimates are seeded from whatever
   is at hand at program-load time: relation cardinalities and
   per-column distinct counts from the base database when facts are
   loaded, telemetry delta totals from a previous run of the same
   program (the daemon's program cache re-plans on cache misses only),
   and a flat default otherwise.

   Reordering changes the enumeration order of solutions, which is
   invisible for plain Horn programs (set semantics; the canonical
   printer sorts) but would change which candidate a choice rule fires
   first and how RQL breaks ties.  So reordering is gated on
   {!reorderable}: every rule body must be flat ([Pos]/[Neg]/[Rel]
   literals only).  For anything with choice / extrema / aggregates /
   next goals the plan is annotation-only — the engines keep the
   interpreter's order and byte-identity is preserved by construction. *)

open Ast

type lit_cost = {
  lp_lit : literal;
  lp_index : int;  (** position in the original body *)
  lp_card : float;  (** estimated cardinality of the scanned relation *)
  lp_cost : float;  (** estimated rows enumerated per outer binding *)
}

type rule_plan = {
  rp_rule : rule;
  rp_label : string;
  rp_body : literal list;  (** the planned body order *)
  rp_lits : lit_cost list;  (** positive atoms, in planned order *)
  rp_reordered : bool;  (** the planned order differs from the source *)
}

type t = { rules : rule_plan list; reorderable : bool }

let flat_rule r =
  List.for_all (function Pos _ | Neg _ | Rel _ -> true | _ -> false) r.body

let reorderable prog = List.for_all flat_rule prog

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

let default_card = 64.0

type pred_stats = { card : float; distinct : float array option }

(* Per-column distinct counts of a materialized relation.  O(rows ×
   arity) once per predicate at plan time — load-time work, amortized
   by the program cache.  [Relation.distinct_counts] runs over raw
   cells on flat relations, so statistics over a bulk-loaded
   million-row EDB cost integer hashing, not [Value] boxing. *)
let column_stats rel =
  Array.map (fun n -> float_of_int (max 1 n)) (Relation.distinct_counts rel)

let pred_stats ?telemetry ?db ~facts pred =
  let from_db =
    match db with
    | None -> None
    | Some db -> (
      match Database.find db pred with
      | Some rel when Relation.cardinal rel > 0 ->
        Some { card = float_of_int (Relation.cardinal rel); distinct = Some (column_stats rel) }
      | _ -> None)
  in
  let from_telemetry () =
    match telemetry with
    | None -> None
    | Some tele -> (
      match Telemetry.delta_tuples tele pred with
      | Some n when n > 0 -> Some { card = float_of_int n; distinct = None }
      | _ -> None)
  in
  (* Fallbacks in decreasing fidelity: materialized rows, delta totals
     from a previous run, the program's own fact count (the engines
     plan before loading facts, so this is what seeds EDB predicates),
     then the flat default. *)
  match from_db with
  | Some s -> s
  | None -> (
    match from_telemetry () with
    | Some s -> s
    | None -> (
      match Hashtbl.find_opt facts pred with
      | Some n when n > 0 -> { card = float_of_int n; distinct = None }
      | _ -> { card = default_card; distinct = None }))

(* Selectivity of one bound argument position: one over the column's
   distinct count when measured, [1/sqrt(card)] otherwise (the classic
   no-statistics guess). *)
let column_selectivity stats c =
  match stats.distinct with
  | Some d when c < Array.length d -> 1.0 /. d.(c)
  | _ -> 1.0 /. sqrt (Float.max 1.0 stats.card)

module SSet = Set.Make (String)

let term_bound bound t = List.for_all (fun v -> SSet.mem v bound) (term_vars t)

(* Estimated rows one scan of [a] enumerates, given [bound] variables:
   cardinality discounted by the selectivity of every argument position
   that the probe can pin (constants, bound variables, fully-bound
   compound terms). *)
let atom_cost stats bound a =
  let sel = ref 1.0 in
  List.iteri
    (fun c arg ->
      let pinned =
        match arg with
        | Cst _ -> true
        | Var "_" -> false
        | Var v -> SSet.mem v bound
        | Cmp _ | Binop _ -> term_bound bound arg
      in
      if pinned then sel := !sel *. column_selectivity stats c)
    a.args;
  Float.max 1.0 (stats.card *. !sel)

(* ------------------------------------------------------------------ *)
(* Per-rule planning                                                   *)
(* ------------------------------------------------------------------ *)

let plan_rule ?telemetry ?db ~facts ~reorder r =
  let atoms, rest =
    List.partition (fun (_, l) -> match l with Pos _ -> true | _ -> false)
      (List.mapi (fun i l -> (i, l)) r.body)
  in
  if atoms = [] then
    (* Facts and scan-free rules have no join to plan.  [analyze] maps
       over every clause, so for fact-heavy programs this path must stay
       cheap: in particular no label rendering — [Pretty] goes through
       [Format] and would cost more per fact than evaluating it. *)
    { rp_rule = r; rp_label = ""; rp_body = r.body; rp_lits = []; rp_reordered = false }
  else begin
    let label = Telemetry.rule_label r in
    let stats_cache = Hashtbl.create 8 in
    let stats_of pred =
      match Hashtbl.find_opt stats_cache pred with
      | Some s -> s
      | None ->
        let s = pred_stats ?telemetry ?db ~facts pred in
        Hashtbl.add stats_cache pred s;
        s
    in
    let order =
      if reorder then begin
        (* Greedy: repeatedly take the cheapest atom under the current
           bound set.  Ties break on source position, so equal-cost
           plans keep the author's order. *)
        let bound = ref SSet.empty in
        let remaining = ref atoms in
        let out = ref [] in
        while !remaining <> [] do
          let best =
            List.fold_left
              (fun best (i, l) ->
                let a = match l with Pos a -> a | _ -> assert false in
                let c = atom_cost (stats_of a.pred) !bound a in
                match best with
                | Some (_, _, bc) when bc <= c -> best
                | _ -> Some (i, l, c))
              None !remaining
          in
          match best with
          | None -> assert false
          | Some (i, l, c) ->
            remaining := List.filter (fun (j, _) -> j <> i) !remaining;
            out := (i, l, c) :: !out;
            let a = match l with Pos a -> a | _ -> assert false in
            bound := List.fold_left (fun acc v -> SSet.add v acc) !bound (atom_vars a)
        done;
        List.rev !out
      end
      else begin
        (* Annotation-only: cost the atoms in their source order. *)
        let bound = ref SSet.empty in
        List.map
          (fun (i, l) ->
            let a = match l with Pos a -> a | _ -> assert false in
            let c = atom_cost (stats_of a.pred) !bound a in
            bound := List.fold_left (fun acc v -> SSet.add v acc) !bound (atom_vars a);
            (i, l, c))
          atoms
      end
    in
    let lits =
      List.map
        (fun (i, l, c) ->
          let a = match l with Pos a -> a | _ -> assert false in
          { lp_lit = l; lp_index = i; lp_card = (stats_of a.pred).card; lp_cost = c })
        order
    in
    let reordered = reorder && List.exists2 (fun (i, _) (j, _, _) -> i <> j) atoms order in
    let body =
      if reordered then
        (* Planned atoms first, then the filters and negations in their
           source order — the body compiler re-plans filters anyway
           (ready filters always fire before the next scan), so only
           the relative scan order matters. *)
        List.map (fun (_, l, _) -> l) order @ List.map snd rest
      else r.body
    in
    { rp_rule = r; rp_label = label; rp_body = body; rp_lits = lits; rp_reordered = reordered }
  end

let analyze ?telemetry ?db prog =
  let ok = reorderable prog in
  let facts = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if is_fact r then
        let p = r.head.pred in
        Hashtbl.replace facts p (1 + Option.value ~default:0 (Hashtbl.find_opt facts p)))
    prog;
  { rules = List.map (plan_rule ?telemetry ?db ~facts ~reorder:ok) prog; reorderable = ok }

(* The program with every rule's body in planned order (the input
   program unchanged when reordering is gated off). *)
let program t = List.map (fun rp -> { rp.rp_rule with body = rp.rp_body }) t.rules

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let lit_to_string l = Format.asprintf "%a" Pretty.pp_literal l

let pp ppf t =
  Format.fprintf ppf "join planner: reordering %s@,"
    (if t.reorderable then "enabled (flat program)" else "disabled (order-sensitive goals)");
  List.iter
    (fun rp ->
      if rp.rp_lits <> [] then begin
        Format.fprintf ppf "@,%s%s@," rp.rp_label
          (if rp.rp_reordered then "   [reordered]" else "");
        List.iteri
          (fun k lc ->
            Format.fprintf ppf "  %d. %-40s card=%-10.0f est=%.1f@," (k + 1)
              (lit_to_string lc.lp_lit) lc.lp_card lc.lp_cost)
          rp.rp_lits
      end)
    t.rules

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"reorderable\": %b, \"rules\": [" t.reorderable);
  (* Facts and scan-free clauses carry no plan; [pp] skips them too. *)
  List.iteri
    (fun i rp ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "{\"rule\": \"%s\", \"reordered\": %b, \"joins\": ["
           (escape rp.rp_label) rp.rp_reordered);
      List.iteri
        (fun k lc ->
          if k > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (Printf.sprintf
               "{\"literal\": \"%s\", \"source_position\": %d, \"card\": %.1f, \"cost\": %.1f}"
               (escape (lit_to_string lc.lp_lit)) lc.lp_index lc.lp_card lc.lp_cost))
        rp.rp_lits;
      Buffer.add_string b "]}")
    (List.filter (fun rp -> rp.rp_lits <> []) t.rules);
  Buffer.add_string b "]}";
  Buffer.contents b
