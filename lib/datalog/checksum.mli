(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).

    Used by the durability layer — WAL records and database snapshots —
    to detect torn and corrupted writes.  Pure OCaml, table-driven; the
    result fits in 32 bits and is returned as a non-negative [int]. *)

val string : string -> int
(** CRC-32 of a whole string. *)

val sub_string : string -> pos:int -> len:int -> int
(** CRC-32 of [len] bytes of [s] starting at [pos].
    @raise Invalid_argument when the range is out of bounds. *)

val update : int -> string -> pos:int -> len:int -> int
(** [update crc s ~pos ~len] extends a running checksum, so
    [update (string a) b ~pos:0 ~len:(String.length b) = string (a ^ b)]. *)
