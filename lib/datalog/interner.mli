(** Global hash-consing of symbol and string payloads.

    [Value.Sym] and [Value.Str] carry ids into this table rather than
    strings, making symbol equality and hashing integer operations.
    [compare_ids] preserves [String.compare] order through a lazily
    rebuilt rank table, so [least]/[most] tie-breaks and [Value.Set]
    orders are unchanged by interning.

    The table is domain-safe: insertions are serialized behind a
    mutex, while {!resolve} and {!compare_ids} stay lock-free (ids are
    published through an atomic frontier).  The worker domains of the
    gbcd server intern and resolve concurrently through this one
    table. *)

val intern : string -> int
(** The id of [s], allocating one on first sight.  Total and
    idempotent: [intern s = intern s], and [resolve (intern s) = s]. *)

val resolve : int -> string
(** The string behind an id.
    @raise Invalid_argument on an id never returned by {!intern}. *)

val canonical : string -> string
(** [resolve (intern s)]: the shared first-interned copy of [s]. *)

val compare_ids : int -> int -> int
(** Agrees with [String.compare (resolve a) (resolve b)], but costs
    two array reads once the rank table covers both ids.  Rebuilding
    the table is O(n log n) amortized over the interns since the last
    comparison against a fresh id. *)

val size : unit -> int
(** Number of distinct strings interned so far. *)
