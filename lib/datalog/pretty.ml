open Ast

let comma fmt () = Format.pp_print_string fmt ", "
let pp_list pp fmt xs = Format.pp_print_list ~pp_sep:comma pp fmt xs

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Max -> "max"
  | Min -> "min"

let rec pp_term fmt = function
  | Var v -> Format.pp_print_string fmt v
  | Cst v -> Value.pp fmt v
  | Cmp ("", args) -> Format.fprintf fmt "(%a)" (pp_list pp_term) args
  | Cmp (f, args) -> Format.fprintf fmt "%s(%a)" f (pp_list pp_term) args
  | Binop ((Max | Min) as op, a, b) ->
    Format.fprintf fmt "%s(%a, %a)" (binop_name op) pp_term a pp_term b
  | Binop (op, a, b) -> Format.fprintf fmt "%a %s %a" pp_atomic a (binop_name op) pp_atomic b

and pp_atomic fmt t =
  match t with
  | Binop ((Add | Sub | Mul), _, _) -> Format.fprintf fmt "(%a)" pp_term t
  | _ -> pp_term fmt t

let pp_atom fmt { pred; args } =
  match args with
  | [] -> Format.pp_print_string fmt pred
  | _ -> Format.fprintf fmt "%s(%a)" pred (pp_list pp_term) args

let cmp_name = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "=" | Ne -> "!="

let pp_group fmt = function
  | [] -> Format.pp_print_string fmt "()"
  | [ (Ast.Cmp ("", _) | Ast.Binop _) as t ] ->
    (* A singleton group whose member is a tuple — or an arithmetic
       term whose rendering may open with a parenthesis — needs extra
       parens, or re-parsing would read it as a multi-member group. *)
    Format.fprintf fmt "(%a)" pp_term t
  | [ t ] -> pp_term fmt t
  | ts -> Format.fprintf fmt "(%a)" (pp_list pp_term) ts

let pp_literal fmt = function
  | Pos a -> pp_atom fmt a
  | Neg a -> Format.fprintf fmt "not %a" pp_atom a
  | Rel (op, a, b) -> Format.fprintf fmt "%a %s %a" pp_term a (cmp_name op) pp_term b
  | Choice (l, r) -> Format.fprintf fmt "choice(%a, %a)" pp_group l pp_group r
  | Least (c, []) -> Format.fprintf fmt "least(%a)" pp_term c
  | Least (c, ks) -> Format.fprintf fmt "least(%a, %a)" pp_term c pp_group ks
  | Most (c, []) -> Format.fprintf fmt "most(%a)" pp_term c
  | Most (c, ks) -> Format.fprintf fmt "most(%a, %a)" pp_term c pp_group ks
  | Agg (op, out, counted, []) ->
    Format.fprintf fmt "%s(%s, %a)" (match op with Count -> "count" | Sum -> "sum") out
      pp_term counted
  | Agg (op, out, counted, ks) ->
    Format.fprintf fmt "%s(%s, %a, %a)" (match op with Count -> "count" | Sum -> "sum") out
      pp_term counted pp_group ks
  | Next v -> Format.fprintf fmt "next(%s)" v

let pp_rule fmt { head; body } =
  match body with
  | [] -> Format.fprintf fmt "%a." pp_atom head
  | _ -> Format.fprintf fmt "%a <- %a." pp_atom head (pp_list pp_literal) body

let pp_program fmt rules =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_rule fmt rules

let term_to_string t = Format.asprintf "%a" pp_term t
let rule_to_string r = Format.asprintf "%a" pp_rule r
let program_to_string p = Format.asprintf "%a" pp_program p
