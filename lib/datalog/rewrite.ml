open Ast

let chosen_pred i = Printf.sprintf "chosen$%d" i
let witness_pred i = Printf.sprintf "witness$%d" i

let is_internal_pred p =
  let has_prefix prefix =
    String.length p > String.length prefix && String.sub p 0 (String.length prefix) = prefix
  in
  has_prefix "chosen$" || has_prefix "witness$"

(* ------------------------------------------------------------------ *)
(* next(I)                                                             *)
(* ------------------------------------------------------------------ *)

let stage_position rule stage_var =
  let rec find i = function
    | [] ->
      invalid_arg
        (Printf.sprintf "Rewrite.expand_next: stage variable %s of rule '%s' not in head"
           stage_var
           (Pretty.rule_to_string rule))
    | Var v :: _ when String.equal v stage_var -> i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 rule.head.args

let expand_next_rule rule =
  match List.partition (function Next _ -> true | _ -> false) rule.body with
  | [], _ -> [ rule ]
  | [ Next stage_var ], rest ->
    let pos = stage_position rule stage_var in
    let w = List.filteri (fun i _ -> i <> pos) rule.head.args in
    let prev = List.map (fun _ -> Var (Ast.fresh_var ())) rule.head.args in
    let prev_stage =
      match List.nth prev pos with Var v -> v | _ -> assert false
    in
    let self = atom rule.head.pred prev in
    let body =
      Pos self
      :: Rel (Eq, Var stage_var, Binop (Add, Var prev_stage, Cst (Value.Int 1)))
      :: Choice ([ Var stage_var ], w)
      :: Choice (w, [ Var stage_var ])
      :: rest
    in
    [ { rule with body } ]
  | _ ->
    invalid_arg
      ("Rewrite.expand_next: multiple next goals in rule " ^ Pretty.rule_to_string rule)

let expand_next program = List.concat_map expand_next_rule program

(* ------------------------------------------------------------------ *)
(* choice                                                              *)
(* ------------------------------------------------------------------ *)

(* Variables of the choice goals of a rule, each once, in order. *)
let choice_vars fds =
  let add acc v = if List.mem v acc then acc else acc @ [ v ] in
  List.fold_left
    (fun acc (l, r) ->
      let tvars ts = List.concat_map term_vars ts in
      List.fold_left add acc (tvars l @ tvars r))
    [] fds

(* One negated [chosen_i] occurrence per FD: left-hand variables shared
   with the rule, everything else fresh, plus the tuple-disequality
   guard on the right-hand side. *)
let fd_negation pred vars (l, r) =
  let lvars = List.concat_map term_vars l in
  let rvars = List.concat_map term_vars r in
  let renaming = Hashtbl.create 8 in
  let local v =
    match Hashtbl.find_opt renaming v with
    | Some v' -> v'
    | None ->
      let v' = Ast.fresh_var () in
      Hashtbl.add renaming v v';
      v'
  in
  let args =
    List.map (fun v -> if List.mem v lvars then Var v else Var (local v)) vars
  in
  let r_fresh = List.map (fun v -> Var (local v)) rvars in
  let r_orig = List.map (fun v -> Var v) rvars in
  [ Neg (atom pred args); Rel (Ne, Cmp ("", r_fresh), Cmp ("", r_orig)) ]

let expand_choice_rule counter rule =
  match choice_fds rule with
  | [] -> [ rule ]
  | fds ->
    let i = !counter in
    incr counter;
    let pred = chosen_pred i in
    let vars = choice_vars fds in
    let chosen_atom = atom pred (List.map (fun v -> Var v) vars) in
    let flat = List.filter (function Choice _ -> false | _ -> true) rule.body in
    let positive = { head = rule.head; body = flat @ [ Pos chosen_atom ] } in
    let chosen_rule =
      { head = chosen_atom; body = flat @ List.concat_map (fd_negation pred vars) fds }
    in
    [ positive; chosen_rule ]

let expand_choice program =
  let counter = ref 0 in
  List.concat_map (expand_choice_rule counter) program

(* ------------------------------------------------------------------ *)
(* least / most                                                        *)
(* ------------------------------------------------------------------ *)

let expand_extrema_rule counter rule =
  let extrema, flat =
    List.partition (function Least _ | Most _ -> true | _ -> false) rule.body
  in
  match extrema with
  | [] -> [ rule ]
  | _ ->
    (* Each extremum gets its own witness over the rule's flat body. *)
    let out_rules = ref [] in
    let body = ref flat in
    List.iter
      (fun lit ->
        let cost, keys, better_op =
          match lit with
          | Least (c, ks) -> (c, ks, Lt)
          | Most (c, ks) -> (c, ks, Gt)
          | _ -> assert false
        in
        let m = !counter in
        incr counter;
        let wpred = witness_pred m in
        let key_tup = Cmp ("", keys) in
        let witness_rule = { head = atom wpred [ key_tup; cost ]; body = flat } in
        let c' = Var (Ast.fresh_var ()) in
        let neg = [ Neg (atom wpred [ key_tup; c' ]); Rel (better_op, c', cost) ] in
        out_rules := witness_rule :: !out_rules;
        body := !body @ neg)
      extrema;
    { rule with body = !body } :: List.rev !out_rules

let expand_extrema program =
  List.iter
    (fun r ->
      if Ast.has_agg r then
        invalid_arg
          ("Rewrite: aggregates have no first-order expansion: " ^ Pretty.rule_to_string r))
    program;
  let counter = ref 0 in
  List.concat_map (expand_extrema_rule counter) program

let expand_all program = expand_extrema (expand_choice (expand_next program))
