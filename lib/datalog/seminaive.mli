(** Semi-naive saturation, one-shot and incremental.

    The incremental form is what makes the engines meet the paper's
    complexity bounds: a choice clique's flat rules are saturated after
    {e every} gamma step, so re-seeding from scratch each time would
    charge the whole database per stage.  {!make} captures persistent
    per-predicate watermarks; each {!step} publishes only the rows that
    appeared since the previous step (whether derived by the flat rules
    themselves or added externally by the gamma operator — chosen
    tuples, staged head facts) and fires only the delta variants.

    Negation and extrema may only refer to predicates outside the
    clique, except under [allow_clique_negation] — used by the choice
    engines for stage-stratified cliques, where every in-clique
    negation is strictly stage-bounded and thus tests only facts that
    are final by the time the negating rule can fire (see DESIGN.md). *)

type incremental

val make :
  ?allow_clique_negation:bool ->
  ?telemetry:Telemetry.t ->
  ?limits:Limits.t ->
  ?pool:Par.t ->
  ?marks:(string -> int) ->
  ?compiled:bool ->
  Database.t ->
  clique:string list ->
  Ast.program ->
  incremental
(** Compile the non-fact rules whose heads lie in [clique].  Every
    positive body predicate is delta-tracked, so the first {!step}
    performs the seed evaluation and later steps are proportional to
    the new facts.

    [marks] sets the initial watermark of each tracked predicate
    (default [fun _ -> 0], the full seed).  Incremental view
    maintenance ({!Ivm}) passes the row counts its materialized model
    already accounts for, so the first {!step} treats only the rows
    appended since — externally asserted facts, lower-stratum
    insertions — as the delta and never replays the existing model.
    Marks are clamped to [0 .. cardinal].

    When [pool] has more than one domain, each delta variant whose
    delta is large enough is evaluated data-parallel: the delta scan is
    sliced across the pool's domains, each shard joins read-only into a
    private buffer, and the buffers are merged in an order that makes
    the database insertion order byte-identical to sequential
    evaluation (see docs/INTERNALS.md, "Parallel evaluation").

    With [compiled] (default [false]) every delta variant runs as an
    ahead-of-time {!Compile} closure chain instead of the [Eval]
    interpreter — same steps, same enumeration order, byte-identical
    models, less allocation per tuple (see docs/INTERNALS.md,
    "Compiled execution").
    @raise Invalid_argument on rules outside the supported class (see
    above). *)

val step : incremental -> unit
(** Saturate to fixpoint given everything that is new since the last
    call.  Extrema rules (non-recursive w.r.t. the clique) are
    re-evaluated whenever the iteration makes progress.
    @raise Limits.Exhausted when the governor passed to {!make} trips;
    the database keeps the consistent prefix derived so far. *)

val eval_clique :
  ?allow_clique_negation:bool ->
  ?telemetry:Telemetry.t ->
  ?limits:Limits.t ->
  ?pool:Par.t ->
  ?compiled:bool ->
  Database.t ->
  clique:string list ->
  Ast.program ->
  unit
(** One-shot: [make] followed by a single [step]. *)

val eval_extrema_rule :
  ?telemetry:Telemetry.t -> ?limits:Limits.t -> Database.t -> Ast.rule -> bool
(** Fire a rule containing [least]/[most] goals once: enumerate the
    flat-body solutions, group each extremum by its (evaluated) keys,
    keep the solutions achieving the optimum of {e every} extremum, and
    insert their heads.  Returns [true] when a new fact was added. *)
