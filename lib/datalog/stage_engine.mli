(** The optimized engine: the Alternating Stage-Choice Fixpoint
    implemented with the Section-6 [(R, Q, L)] structures.

    Every [next] rule of a choice clique is compiled into a plan built
    around one {e source atom} — the positive body atom that binds the
    extremum's cost variable.  Source facts stream into an {!Rql}
    structure as the clique's flat rules saturate (semi-naive, delta
    watermarks); the paper's [retrieve least] pops the cheapest
    candidate and lazily re-validates it against the {e residual} body
    (the remaining joins, comparisons and negations) and the choice
    FDs.  Lazy revalidation is sound because in stage-stratified
    programs those conditions are monotone — once a candidate is
    invalid it stays invalid — so a discarded fact can go to [R]
    forever.

    The r-congruence key is derived per rule by the shadow-safety
    analysis described in DESIGN.md: an argument may be dropped from
    the key only when the choice FDs guarantee that, within a
    congruence class, at most one fact can ever fire and the cheapest
    is always an acceptable representative.  When the analysis cannot
    establish that (e.g. the matching program), shadowing is disabled
    and [Q] simply holds every candidate, exactly as the paper's own
    complexity analysis of Example 7 assumes.

    Exit rules ([choice] without [next], e.g. greedy TSP's cheapest
    first arc) are evaluated with the reference gamma operator.

    The produced database is a stable model of the same rewritten
    program as {!Choice_fixpoint}'s, with identical [chosen$i]
    layouts, and coincides with the reference engine's model whenever
    the program's extrema are tie-free. *)

exception Not_compilable of string
(** The program is outside the compiled class: a [next] rule with more
    than one extremum, no source atom binding the cost variable, or a
    head not determined by its choice variables. *)

type stats = {
  gamma_steps : int;
  inserted : int;  (** source facts offered to the queues *)
  shadowed : int;  (** facts sent to R at insertion (congruence) *)
  stale : int;  (** superseded queue entries skipped at pop *)
  invalid_pops : int;  (** candidates discarded by revalidation *)
  max_queue : int;  (** largest live queue across rules *)
}

type shadow_mode =
  [ `Auto  (** per-rule safety analysis (default) *)
  | `Off  (** ablation A2: never shadow *)
  ]

val run :
  ?backend:[ `Binary | `Pairing ] ->
  ?shadow:shadow_mode ->
  ?telemetry:Telemetry.t ->
  ?limits:Limits.t ->
  ?jobs:int ->
  ?compiled:bool ->
  ?plan:Plan.t ->
  ?db:Database.t ->
  Ast.program ->
  Database.t * stats
(** When [telemetry] is an enabled collector, per-rule counters
    (candidates, firings, queue statistics), delta sizes and
    per-stratum spans are recorded into it.  [jobs] > 1 evaluates flat
    saturation and exit-rule candidate collection data-parallel on a
    shared domain pool ({!Par.get}); the model is byte-identical to
    [jobs = 1] — [next]-rule pops and all firings stay sequential (the
    paper's alternation), only the side-effect-free enumeration fans
    out.

    [compiled] (default [false]) runs flat saturation, residual
    revalidation and exit-rule enumeration as ahead-of-time {!Compile}
    closure chains over the cost-planned join order ([plan] when given,
    else {!Plan.analyze}) — byte-identical models, less allocation per
    tuple (see docs/INTERNALS.md, "Compiled execution").
    @raise Limits.Exhausted when [limits] trips a budget; use
    {!run_governed} to receive the partial database instead. *)

val run_governed :
  ?backend:[ `Binary | `Pairing ] ->
  ?shadow:shadow_mode ->
  ?telemetry:Telemetry.t ->
  ?limits:Limits.t ->
  ?jobs:int ->
  ?compiled:bool ->
  ?plan:Plan.t ->
  ?db:Database.t ->
  Ast.program ->
  (Database.t * stats) Limits.outcome
(** Like {!run}, but budget exhaustion and cancellation are returned as
    {!Limits.Partial} carrying the consistent partial database derived
    so far plus a diagnostics snapshot, instead of an exception.  A
    budget tripped inside a parallel region aborts every shard before
    anything is merged, so the partial database is consistent. *)

val model : ?db:Database.t -> Ast.program -> Database.t

val compiled_keys : Ast.program -> (string * bool * int list) list
(** For each [next] rule (by head predicate): whether congruence
    shadowing is enabled and the source-argument positions forming the
    congruence key.  Exposed for tests of the shadow-safety analysis. *)
