(** Greedy by Choice — public facade.

    One module to open: re-exports the Datalog substrate (values, AST,
    parser, analyses, engines), the ordered structures of Section 6,
    the workload generators, and the greedy-algorithm suite of
    Section 5.  See README.md for a tour and DESIGN.md for the mapping
    from the paper to the code. *)

(* Datalog substrate *)
module Interner = Gbc_datalog.Interner
module Value = Gbc_datalog.Value
module Ast = Gbc_datalog.Ast
module Lexer = Gbc_datalog.Lexer
module Parser = Gbc_datalog.Parser
module Pretty = Gbc_datalog.Pretty
module Relation = Gbc_datalog.Relation
module Database = Gbc_datalog.Database
module Eval = Gbc_datalog.Eval
module Plan = Gbc_datalog.Plan
module Compile = Gbc_datalog.Compile
module Depgraph = Gbc_datalog.Depgraph
module Stage = Gbc_datalog.Stage
module Rewrite = Gbc_datalog.Rewrite
module Naive = Gbc_datalog.Naive
module Seminaive = Gbc_datalog.Seminaive
module Ivm = Gbc_datalog.Ivm
module Telemetry = Gbc_datalog.Telemetry
module Limits = Gbc_datalog.Limits
module Par = Gbc_datalog.Par
module Gbc_error = Gbc_datalog.Gbc_error
module Choice_fixpoint = Gbc_datalog.Choice_fixpoint
module Stage_engine = Gbc_datalog.Stage_engine
module Stable = Gbc_datalog.Stable
module Wellfounded = Gbc_datalog.Wellfounded
module Transform = Gbc_datalog.Transform
module Magic = Gbc_datalog.Magic
module Explain = Gbc_datalog.Explain

(* Query-serving daemon (gbcd) *)
module Protocol = Gbc_server.Protocol
module Program_cache = Gbc_server.Program_cache
module Session = Gbc_server.Session
module Server = Gbc_server.Server
module Client = Gbc_server.Client
module Router = Gbc_server.Router

(* Durability substrate (WAL + snapshots) *)
module Checksum = Gbc_datalog.Checksum
module Db_snapshot = Gbc_datalog.Db_snapshot
module Wal = Gbc_server.Wal
module Durable = Gbc_server.Durable

(* Ordered structures (Section 6) *)
module Binary_heap = Gbc_ordered.Binary_heap
module Pairing_heap = Gbc_ordered.Pairing_heap
module Union_find = Gbc_ordered.Union_find
module Rql = Gbc_ordered.Rql

(* Workloads *)
module Rng = Gbc_workload.Rng
module Graph_gen = Gbc_workload.Graph_gen
module Text_gen = Gbc_workload.Text_gen
module Interval_gen = Gbc_workload.Interval_gen

(* Greedy algorithms (Section 5 + extensions) *)
module Runner = Gbc_greedy.Runner
module Sorting = Gbc_greedy.Sorting
module Prim = Gbc_greedy.Prim
module Kruskal = Gbc_greedy.Kruskal
module Matching = Gbc_greedy.Matching
module Tsp = Gbc_greedy.Tsp
module Huffman = Gbc_greedy.Huffman
module Dijkstra = Gbc_greedy.Dijkstra
module Scheduling = Gbc_greedy.Scheduling
module Vertex_cover = Gbc_greedy.Vertex_cover
module Set_cover = Gbc_greedy.Set_cover
module Assignment = Gbc_greedy.Assignment
module Matroid = Gbc_greedy.Matroid
