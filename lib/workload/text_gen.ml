let zipf ~seed ~letters =
  let rng = Rng.create seed in
  let scale = 1000 * letters in
  List.init letters (fun i ->
      let base = scale / (i + 1) in
      let jitter = Rng.int rng (1 + (base / 4)) in
      (Printf.sprintf "l%d" i, max 1 (base + jitter)))

let of_string s =
  let tbl = Hashtbl.create 64 in
  String.iter
    (fun c ->
      let key = Printf.sprintf "c_%d" (Char.code c) in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    s;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let letter_facts ?(pred = "letter") freqs =
  List.map (fun (sym, freq) -> Gbc_datalog.Ast.fact pred [ Gbc_datalog.Value.sym sym; Gbc_datalog.Value.Int freq ]) freqs
