type t = { nodes : int; edges : (int * int * int) list }

let norm u v = if u < v then (u, v) else (v, u)

let random_connected_gen ~unique_weights ~seed ~nodes ~extra_edges =
  if nodes < 1 then invalid_arg "Graph_gen.random_connected: need at least one node";
  let rng = Rng.create seed in
  let seen = Hashtbl.create (4 * (nodes + extra_edges)) in
  let edges = ref [] in
  let count = ref 0 in
  let add u v =
    let u, v = norm u v in
    if u <> v && not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.add seen (u, v) ();
      edges := (u, v) :: !edges;
      incr count
    end
  in
  (* Random spanning tree: connect node i to a random earlier node. *)
  for i = 1 to nodes - 1 do
    add i (Rng.int rng i)
  done;
  let attempts = ref 0 in
  let max_extra = (nodes * (nodes - 1) / 2) - (nodes - 1) in
  let target = nodes - 1 + min extra_edges max_extra in
  while !count < target && !attempts < 100 * (extra_edges + 1) do
    incr attempts;
    let u = Rng.int rng nodes and v = Rng.int rng nodes in
    add u v
  done;
  let m = !count in
  let costs =
    if unique_weights then begin
      (* A shuffled block of distinct integers. *)
      let costs = Array.init m (fun i -> i + 1) in
      Rng.shuffle rng costs;
      costs
    end
    else
      (* Small costs with replacement: plenty of ties. *)
      Array.init m (fun _ -> 1 + Rng.int rng (max 2 (m / 8)))
  in
  let edges = List.mapi (fun i (u, v) -> (u, v, costs.(i))) (List.rev !edges) in
  { nodes; edges }

let random_connected ~seed ~nodes ~extra_edges =
  random_connected_gen ~unique_weights:true ~seed ~nodes ~extra_edges

let random_connected_ties ~seed ~nodes ~extra_edges =
  random_connected_gen ~unique_weights:false ~seed ~nodes ~extra_edges

let complete ~seed ~nodes =
  let rng = Rng.create seed in
  let xs = Array.init nodes (fun _ -> Rng.int rng 10_000) in
  let ys = Array.init nodes (fun _ -> Rng.int rng 10_000) in
  let edges = ref [] in
  let idx = ref 0 in
  for u = 0 to nodes - 1 do
    for v = u + 1 to nodes - 1 do
      let dx = xs.(u) - xs.(v) and dy = ys.(u) - ys.(v) in
      let d = int_of_float (sqrt (float_of_int ((dx * dx) + (dy * dy)))) in
      (* The offset keeps costs unique without distorting the metric. *)
      incr idx;
      edges := (u, v, (d * 512) + (!idx mod 512)) :: !edges
    done
  done;
  { nodes; edges = List.rev !edges }

let grid ~width ~height =
  let node x y = (y * width) + x in
  let edges = ref [] in
  let c = ref 0 in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      if x + 1 < width then begin
        incr c;
        edges := (node x y, node (x + 1) y, (!c * 7 mod 1009) + 1 + (!c * 1009)) :: !edges
      end;
      if y + 1 < height then begin
        incr c;
        edges := (node x y, node x (y + 1), (!c * 7 mod 1009) + 1 + (!c * 1009)) :: !edges
      end
    done
  done;
  { nodes = width * height; edges = List.rev !edges }

let mst_weight g =
  let sorted = List.sort (fun (_, _, a) (_, _, b) -> compare a b) g.edges in
  let uf = Gbc_ordered.Union_find.create g.nodes in
  List.fold_left
    (fun acc (u, v, c) -> if Gbc_ordered.Union_find.union uf u v then acc + c else acc)
    0 sorted

(* ---------------- the big-EDB tier ---------------- *)

(* Columnar edge store: three parallel int arrays instead of a list of
   boxed triples.  At 10^6-10^7 edges the list representation costs a
   cons cell and a tuple header per edge before the engine even sees a
   fact; this one is three flat blocks, generated in O(m) and loaded
   into a relation without allocating a single Value. *)
type big = {
  big_nodes : int;
  big_src : int array;
  big_dst : int array;
  big_cost : int array;
}

let big_edges g = Array.length g.big_src

(* Pairwise-distinct costs: a shuffled block of 1..m, as in
   [random_connected] — unique weights give the greedy programs a
   single stable model, which the flat-vs-boxed identity checks rely
   on. *)
let unique_costs rng m =
  let costs = Array.init m (fun i -> i + 1) in
  Rng.shuffle rng costs;
  costs

(* Power-law endpoint: node ids are rank-ordered, so skewing the draw
   toward 0 makes low ids hubs.  [u^3] over a uniform u concentrates
   ~an eighth of the mass on the first 0.4% of nodes — heavy-tailed
   degree without preferential-attachment bookkeeping. *)
let skewed rng nodes =
  let u = Rng.float rng in
  let i = int_of_float (float_of_int nodes *. (u *. u *. u)) in
  if i >= nodes then nodes - 1 else i

let power_law ~seed ~nodes ~edges =
  if nodes < 2 then invalid_arg "Graph_gen.power_law: need at least two nodes";
  if edges < nodes - 1 then invalid_arg "Graph_gen.power_law: need at least nodes-1 edges";
  let rng = Rng.create seed in
  let src = Array.make edges 0 and dst = Array.make edges 0 in
  (* Spanning tree first (connectivity), attaching each node to a
     skewed earlier one; the remaining edges are skewed chords.  Multi
     edges are kept — costs are unique, so parallel edges are distinct
     facts, as in a real road/link corpus. *)
  for i = 1 to nodes - 1 do
    src.(i - 1) <- i;
    dst.(i - 1) <- skewed rng i
  done;
  for e = nodes - 1 to edges - 1 do
    let u = ref (skewed rng nodes) and v = ref (Rng.int rng nodes) in
    while !u = !v do v := Rng.int rng nodes done;
    src.(e) <- !u;
    dst.(e) <- !v
  done;
  { big_nodes = nodes; big_src = src; big_dst = dst; big_cost = unique_costs rng edges }

let road_network ~seed ~width ~height =
  if width < 2 || height < 2 then invalid_arg "Graph_gen.road_network: need a 2x2 grid";
  let rng = Rng.create seed in
  let nodes = width * height in
  let node x y = (y * width) + x in
  (* 4-neighbour grid plus ~1% long shortcuts (the highways). *)
  let grid_edges = (width - 1) * height + width * (height - 1) in
  let shortcuts = max 1 (nodes / 100) in
  let m = grid_edges + shortcuts in
  let src = Array.make m 0 and dst = Array.make m 0 in
  let e = ref 0 in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      if x + 1 < width then begin
        src.(!e) <- node x y;
        dst.(!e) <- node (x + 1) y;
        incr e
      end;
      if y + 1 < height then begin
        src.(!e) <- node x y;
        dst.(!e) <- node x (y + 1);
        incr e
      end
    done
  done;
  for _ = 1 to shortcuts do
    let u = ref (Rng.int rng nodes) and v = ref (Rng.int rng nodes) in
    while !u = !v do v := Rng.int rng nodes done;
    src.(!e) <- !u;
    dst.(!e) <- !v;
    incr e
  done;
  { big_nodes = nodes; big_src = src; big_dst = dst; big_cost = unique_costs rng m }

let big_mst_weight g =
  let m = big_edges g in
  let order = Array.init m (fun i -> i) in
  Array.sort (fun a b -> compare g.big_cost.(a) g.big_cost.(b)) order;
  let uf = Gbc_ordered.Union_find.create g.big_nodes in
  let w = ref 0 in
  Array.iter
    (fun i ->
      if Gbc_ordered.Union_find.union uf g.big_src.(i) g.big_dst.(i) then
        w := !w + g.big_cost.(i))
    order;
  !w

let load_big ?(pred = "g") ?(directed = false) db g =
  let rel = Gbc_datalog.Database.relation db pred 3 in
  let row = Array.make 3 0 in
  let m = big_edges g in
  for i = 0 to m - 1 do
    row.(0) <- g.big_src.(i);
    row.(1) <- g.big_dst.(i);
    row.(2) <- g.big_cost.(i);
    ignore (Gbc_datalog.Relation.add_ints rel row);
    if not directed then begin
      row.(0) <- g.big_dst.(i);
      row.(1) <- g.big_src.(i);
      ignore (Gbc_datalog.Relation.add_ints rel row)
    end
  done

let load_big_nodes ?(pred = "node") db g =
  let rel = Gbc_datalog.Database.relation db pred 1 in
  let row = Array.make 1 0 in
  for i = 0 to g.big_nodes - 1 do
    row.(0) <- i;
    ignore (Gbc_datalog.Relation.add_ints rel row)
  done

let fact3 pred u v c = Gbc_datalog.Ast.fact pred [ Gbc_datalog.Value.Int u; Gbc_datalog.Value.Int v; Gbc_datalog.Value.Int c ]

let to_facts ?(pred = "g") ?(directed = false) g =
  List.concat_map
    (fun (u, v, c) ->
      if directed then [ fact3 pred u v c ] else [ fact3 pred u v c; fact3 pred v u c ])
    g.edges

let node_facts ?(pred = "node") g =
  List.init g.nodes (fun i -> Gbc_datalog.Ast.fact pred [ Gbc_datalog.Value.Int i ])
