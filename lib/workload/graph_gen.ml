type t = { nodes : int; edges : (int * int * int) list }

let norm u v = if u < v then (u, v) else (v, u)

let random_connected_gen ~unique_weights ~seed ~nodes ~extra_edges =
  if nodes < 1 then invalid_arg "Graph_gen.random_connected: need at least one node";
  let rng = Rng.create seed in
  let seen = Hashtbl.create (4 * (nodes + extra_edges)) in
  let edges = ref [] in
  let count = ref 0 in
  let add u v =
    let u, v = norm u v in
    if u <> v && not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.add seen (u, v) ();
      edges := (u, v) :: !edges;
      incr count
    end
  in
  (* Random spanning tree: connect node i to a random earlier node. *)
  for i = 1 to nodes - 1 do
    add i (Rng.int rng i)
  done;
  let attempts = ref 0 in
  let max_extra = (nodes * (nodes - 1) / 2) - (nodes - 1) in
  let target = nodes - 1 + min extra_edges max_extra in
  while !count < target && !attempts < 100 * (extra_edges + 1) do
    incr attempts;
    let u = Rng.int rng nodes and v = Rng.int rng nodes in
    add u v
  done;
  let m = !count in
  let costs =
    if unique_weights then begin
      (* A shuffled block of distinct integers. *)
      let costs = Array.init m (fun i -> i + 1) in
      Rng.shuffle rng costs;
      costs
    end
    else
      (* Small costs with replacement: plenty of ties. *)
      Array.init m (fun _ -> 1 + Rng.int rng (max 2 (m / 8)))
  in
  let edges = List.mapi (fun i (u, v) -> (u, v, costs.(i))) (List.rev !edges) in
  { nodes; edges }

let random_connected ~seed ~nodes ~extra_edges =
  random_connected_gen ~unique_weights:true ~seed ~nodes ~extra_edges

let random_connected_ties ~seed ~nodes ~extra_edges =
  random_connected_gen ~unique_weights:false ~seed ~nodes ~extra_edges

let complete ~seed ~nodes =
  let rng = Rng.create seed in
  let xs = Array.init nodes (fun _ -> Rng.int rng 10_000) in
  let ys = Array.init nodes (fun _ -> Rng.int rng 10_000) in
  let edges = ref [] in
  let idx = ref 0 in
  for u = 0 to nodes - 1 do
    for v = u + 1 to nodes - 1 do
      let dx = xs.(u) - xs.(v) and dy = ys.(u) - ys.(v) in
      let d = int_of_float (sqrt (float_of_int ((dx * dx) + (dy * dy)))) in
      (* The offset keeps costs unique without distorting the metric. *)
      incr idx;
      edges := (u, v, (d * 512) + (!idx mod 512)) :: !edges
    done
  done;
  { nodes; edges = List.rev !edges }

let grid ~width ~height =
  let node x y = (y * width) + x in
  let edges = ref [] in
  let c = ref 0 in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      if x + 1 < width then begin
        incr c;
        edges := (node x y, node (x + 1) y, (!c * 7 mod 1009) + 1 + (!c * 1009)) :: !edges
      end;
      if y + 1 < height then begin
        incr c;
        edges := (node x y, node x (y + 1), (!c * 7 mod 1009) + 1 + (!c * 1009)) :: !edges
      end
    done
  done;
  { nodes = width * height; edges = List.rev !edges }

let mst_weight g =
  let sorted = List.sort (fun (_, _, a) (_, _, b) -> compare a b) g.edges in
  let uf = Gbc_ordered.Union_find.create g.nodes in
  List.fold_left
    (fun acc (u, v, c) -> if Gbc_ordered.Union_find.union uf u v then acc + c else acc)
    0 sorted

let fact3 pred u v c = Gbc_datalog.Ast.fact pred [ Gbc_datalog.Value.Int u; Gbc_datalog.Value.Int v; Gbc_datalog.Value.Int c ]

let to_facts ?(pred = "g") ?(directed = false) g =
  List.concat_map
    (fun (u, v, c) ->
      if directed then [ fact3 pred u v c ] else [ fact3 pred u v c; fact3 pred v u c ])
    g.edges

let node_facts ?(pred = "node") g =
  List.init g.nodes (fun i -> Gbc_datalog.Ast.fact pred [ Gbc_datalog.Value.Int i ])
