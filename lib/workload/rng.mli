(** Deterministic pseudo-random numbers (splitmix64).

    The benchmark harness and the property tests need workloads that
    are bit-identical across runs and platforms; OCaml's [Random] gives
    no such guarantee across versions, so we carry our own generator. *)

type t

val create : int -> t
(** [create seed]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  [bound] must be positive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val sample_distinct : t -> int -> int -> int list
(** [sample_distinct t k bound]: [k] distinct integers in [0, bound).
    @raise Invalid_argument when [k > bound]. *)
