let random ~seed ~jobs ~horizon =
  if horizon < 2 * jobs then invalid_arg "Interval_gen.random: horizon too small";
  let rng = Rng.create seed in
  let finishes = List.sort compare (Rng.sample_distinct rng jobs (horizon - 1)) in
  List.mapi
    (fun i f ->
      let finish = f + 1 in
      let start = Rng.int rng finish in
      (i, start, finish))
    finishes

let job_facts ?(pred = "job") js =
  List.map (fun (id, s, f) -> Gbc_datalog.Ast.fact pred [ Gbc_datalog.Value.Int id; Gbc_datalog.Value.Int s; Gbc_datalog.Value.Int f ]) js
