(** Interval (job) workloads for the scheduling example. *)

val random : seed:int -> jobs:int -> horizon:int -> (int * int * int) list
(** [jobs] tuples [(id, start, finish)] with [0 <= start < finish <=
    horizon] and pairwise-distinct finish times (so the greedy
    earliest-finish schedule is unique). *)

val job_facts : ?pred:string -> (int * int * int) list -> Gbc_datalog.Ast.program
(** [job(id, start, finish)] facts. *)
