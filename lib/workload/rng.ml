type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_u64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the conversion to OCaml's 63-bit int stays
     non-negative. *)
  let x = Int64.to_int (Int64.shift_right_logical (next_u64 t) 2) in
  x mod bound

let float t =
  let x = Int64.to_float (Int64.shift_right_logical (next_u64 t) 11) in
  x /. 9007199254740992.0 (* 2^53 *)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_distinct t k bound =
  if k > bound then invalid_arg "Rng.sample_distinct: k > bound";
  if 3 * k >= bound then begin
    let a = Array.init bound (fun i -> i) in
    shuffle t a;
    Array.to_list (Array.sub a 0 k)
  end
  else begin
    let seen = Hashtbl.create (2 * k) in
    let rec draw acc n =
      if n = 0 then acc
      else
        let x = int t bound in
        if Hashtbl.mem seen x then draw acc n
        else begin
          Hashtbl.add seen x ();
          draw (x :: acc) (n - 1)
        end
    in
    draw [] k
  end
