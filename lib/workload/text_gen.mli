(** Letter-frequency workloads for Huffman coding. *)

val zipf : seed:int -> letters:int -> (string * int) list
(** [letters] symbols [l0 .. l(n-1)] with Zipf-ish frequencies
    (rank [k] gets roughly [N / k], jittered, minimum 1). *)

val of_string : string -> (string * int) list
(** Frequency table of the characters of a string; each character [c]
    becomes the symbol ["c_<code>"]. *)

val letter_facts : ?pred:string -> (string * int) list -> Gbc_datalog.Ast.program
(** [letter(sym, freq)] facts. *)
