(** Random graph workloads for the benchmarks and tests.

    Nodes are integers [0 .. n-1]; edge costs are positive integers.
    Generators marked "unique" assign pairwise-distinct costs so that
    the greedy programs have a single stable model and engine-equality
    tests can compare models exactly. *)

type t = {
  nodes : int;
  edges : (int * int * int) list;  (** (u, v, cost), u < v, stored once *)
}

val random_connected : seed:int -> nodes:int -> extra_edges:int -> t
(** A connected graph: a random spanning tree plus [extra_edges]
    distinct random chords, all with pairwise-distinct costs (giving
    the greedy programs a unique stable model). *)

val random_connected_ties : seed:int -> nodes:int -> extra_edges:int -> t
(** Same topology generator, but small costs drawn with replacement:
    ties abound, exercising the engines' deterministic tie-breaking. *)

val complete : seed:int -> nodes:int -> t
(** Complete graph on random integer points (approximately Euclidean
    costs, made unique by a per-edge offset). *)

val grid : width:int -> height:int -> t
(** Grid graph with unique deterministic costs. *)

val mst_weight : t -> int
(** Weight of a minimum spanning tree (Kruskal on sorted edges) —
    the test oracle. *)

val to_facts : ?pred:string -> ?directed:bool -> t -> Gbc_datalog.Ast.program
(** Edge facts [g(u, v, c)].  With [directed:false] (default) each
    edge appears in both orientations, as the paper stores undirected
    graphs. *)

val node_facts : ?pred:string -> t -> Gbc_datalog.Ast.program
(** [node(i)] facts. *)
