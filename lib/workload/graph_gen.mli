(** Random graph workloads for the benchmarks and tests.

    Nodes are integers [0 .. n-1]; edge costs are positive integers.
    Generators marked "unique" assign pairwise-distinct costs so that
    the greedy programs have a single stable model and engine-equality
    tests can compare models exactly. *)

type t = {
  nodes : int;
  edges : (int * int * int) list;  (** (u, v, cost), u < v, stored once *)
}

val random_connected : seed:int -> nodes:int -> extra_edges:int -> t
(** A connected graph: a random spanning tree plus [extra_edges]
    distinct random chords, all with pairwise-distinct costs (giving
    the greedy programs a unique stable model). *)

val random_connected_ties : seed:int -> nodes:int -> extra_edges:int -> t
(** Same topology generator, but small costs drawn with replacement:
    ties abound, exercising the engines' deterministic tie-breaking. *)

val complete : seed:int -> nodes:int -> t
(** Complete graph on random integer points (approximately Euclidean
    costs, made unique by a per-edge offset). *)

val grid : width:int -> height:int -> t
(** Grid graph with unique deterministic costs. *)

val mst_weight : t -> int
(** Weight of a minimum spanning tree (Kruskal on sorted edges) —
    the test oracle. *)

val to_facts : ?pred:string -> ?directed:bool -> t -> Gbc_datalog.Ast.program
(** Edge facts [g(u, v, c)].  With [directed:false] (default) each
    edge appears in both orientations, as the paper stores undirected
    graphs. *)

val node_facts : ?pred:string -> t -> Gbc_datalog.Ast.program
(** [node(i)] facts. *)

(** {2 The big-EDB tier}

    Columnar graphs for the 10^6-10^7-edge corpus: three parallel int
    arrays instead of a triple list, generated in O(edges) and loaded
    straight into flat relations with {!load_big} — no [Value] boxing
    anywhere on the path. *)

type big = {
  big_nodes : int;
  big_src : int array;
  big_dst : int array;
  big_cost : int array;  (** pairwise distinct (single stable model) *)
}

val big_edges : big -> int

val power_law : seed:int -> nodes:int -> edges:int -> big
(** Connected multigraph with a heavy-tailed degree distribution: a
    spanning tree attaching each node to a skewed earlier one, then
    skewed random chords (low node ids become hubs).  Costs are a
    shuffled block of [1..edges]. *)

val road_network : seed:int -> width:int -> height:int -> big
(** A [width x height] 4-neighbour grid plus ~1% random long shortcuts
    — the planar-plus-highways shape of road graphs.  Unique costs. *)

val big_mst_weight : big -> int
(** Kruskal over the columns — the test oracle for the big tier. *)

val load_big : ?pred:string -> ?directed:bool -> Gbc_datalog.Database.t -> big -> unit
(** Load edge facts [pred(u, v, c)] through the relation bulk-load fast
    path ([Relation.add_ints]); with [directed:false] (default) each
    edge is loaded in both orientations. *)

val load_big_nodes : ?pred:string -> Gbc_datalog.Database.t -> big -> unit
(** Load [pred(i)] for every node, same fast path. *)
