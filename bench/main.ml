(* The benchmark harness: one experiment per complexity claim of the
   paper's Section 6 (plus the worked-example scalings and the design
   ablations), followed by bechamel micro-benchmarks — one Test.make
   per experiment table.  See DESIGN.md section 5 for the experiment
   index and EXPERIMENTS.md for the recorded results. *)

open Gbc

(* --smoke: tiniest instance per experiment, no bechamel; afterwards
   the emitted BENCH_*.json files are parsed back and the process
   exits nonzero if any is malformed (the `bench-smoke` dune alias). *)
(* --perf-smoke: run only the E14 allocation kernels at their smallest
   size, validate the emitted BENCH_E14.json and fail on a words-per-
   fact regression (the `perf-smoke` dune alias). *)
(* --e15: run only the daemon throughput/latency experiment at full
   scale (8 sessions, 3 rounds) and write BENCH_E15.json. *)
(* --e17: run only the incremental-maintenance latency experiment at
   full scale and write BENCH_E17.json. *)
(* --e18: run only the durability experiment (WAL overhead + cold
   recovery) at full scale, write BENCH_E18.json, and fail if the
   fsync-batched WAL costs more than 20% of the E15 workload's rps. *)
(* --e14: run only the allocation kernels at full scale (interpreted
   vs compiled), write BENCH_E14.json, and fail on a words-per-fact
   budget violation in either mode. *)
(* --e19: run only the scale-out serving experiment (open-loop load
   through gbc-router, blocking vs pipelined clients) at full scale,
   write BENCH_E19.json, and fail unless the pipelined client's
   requests/s strictly beats the blocking client's. *)
(* --e20: run only the big-EDB tier (million-edge bulk loads, flat vs
   boxed; snapshot restore; the greedy exemplars at a sub-tier), write
   BENCH_E20.json, and fail unless the flat representation is at least
   1.5x better on minor words per loaded fact on every corpus. *)
let only_e14 = Array.exists (( = ) "--e14") Sys.argv
let only_e15 = Array.exists (( = ) "--e15") Sys.argv
let only_e17 = Array.exists (( = ) "--e17") Sys.argv
let only_e18 = Array.exists (( = ) "--e18") Sys.argv
let only_e19 = Array.exists (( = ) "--e19") Sys.argv
let only_e20 = Array.exists (( = ) "--e20") Sys.argv
let perf_smoke = Array.exists (( = ) "--perf-smoke") Sys.argv
let smoke = perf_smoke || Array.exists (( = ) "--smoke") Sys.argv
let quick = smoke || Array.exists (( = ) "--quick") Sys.argv

(* --repeat N: time every point with N repetitions (best and median
   both land in the BENCH json) instead of the per-site defaults. *)
let () =
  Array.iteri
    (fun i a ->
      if a = "--repeat" && i + 1 < Array.length Sys.argv then
        match int_of_string_opt Sys.argv.(i + 1) with
        | Some n when n >= 1 -> Harness.repeat_override := Some n
        | _ -> ())
    Sys.argv

let scale xs =
  let keep = if smoke then 1 else if quick then 2 else List.length xs in
  List.filteri (fun i _ -> i < keep) xs

(* Counter snapshot for a BENCH point: re-run the program once on the
   staged engine with telemetry enabled (the timed runs stay
   uninstrumented).  Programs outside the compiled class record no
   counters. *)
let counters_of prog =
  let telemetry = Telemetry.create () in
  match Stage_engine.run ~telemetry prog with
  | _ -> Telemetry.totals telemetry
  | exception (Stage_engine.Not_compilable _ | Choice_fixpoint.Unsupported _) -> []

let record = Harness.record

(* ------------------------------------------------------------------ *)
(* E1 — Prim (claim C1: O(e log e) vs procedural O(e log n))           *)
(* ------------------------------------------------------------------ *)

let e1 () =
  let sizes = scale [ 128; 256; 512; 1024; 2048 ] in
  let rows, staged_pts, ref_pts, proc_pts =
    List.fold_left
      (fun (rows, sp, rp, pp) n ->
        let g = Graph_gen.random_connected ~seed:(100 + n) ~nodes:n ~extra_edges:(7 * n) in
        let e = float_of_int (List.length g.Graph_gen.edges) in
        let oracle = Graph_gen.mst_weight g in
        let r_staged, ts = Harness.time_stats (fun () -> Prim.run Runner.Staged g) in
        let t_staged = ts.Harness.best_s in
        let r_ref, t_ref =
          if n <= 512 then
            let r, t = Harness.time ~repeat:1 (fun () -> Prim.run Runner.Reference g) in
            (Some r, Some t)
          else (None, None)
        in
        let r_proc, t_proc = Harness.time (fun () -> Prim.procedural g) in
        assert (r_staged.Prim.weight = oracle && r_proc.Prim.weight = oracle);
        Option.iter (fun r -> assert (r.Prim.weight = oracle)) r_ref;
        record ~exp:"E1" ~n ~wall:t_staged ~median:ts.Harness.median_s
          (counters_of (Prim.program ~root:0 g));
        let row =
          [ string_of_int n; string_of_int (int_of_float e); Harness.sec t_staged;
            (match t_ref with Some t -> Harness.sec t | None -> "-");
            Harness.sec t_proc; Harness.ratio t_staged t_proc ]
        in
        ( row :: rows,
          (e, t_staged) :: sp,
          (match t_ref with Some t -> (e, t) :: rp | None -> rp),
          (e, t_proc) :: pp ))
      ([], [], [], []) sizes
  in
  Harness.table ~title:"E1  Prim's algorithm (paper claim C1: O(e log e))"
    ~header:[ "n"; "e"; "staged(s)"; "reference(s)"; "procedural(s)"; "staged/proc" ]
    (List.rev rows);
  Printf.printf
    "E1 slopes (log-log vs e): staged %s, reference %s, procedural %s  (1.0 = linear)\n"
    (Harness.slope (Harness.loglog_slope staged_pts))
    (Harness.slope (Harness.loglog_slope ref_pts))
    (Harness.slope (Harness.loglog_slope proc_pts))

(* ------------------------------------------------------------------ *)
(* E2 — Sorting (claim C2: O(n log n), "heap-sort, not insertion")     *)
(* ------------------------------------------------------------------ *)

let e2 () =
  let sizes = scale [ 1024; 2048; 4096; 8192; 16384 ] in
  let rng = Rng.create 7 in
  let rows, staged_pts, proc_pts =
    List.fold_left
      (fun (rows, sp, pp) n ->
        let items = List.init n (fun i -> (Printf.sprintf "x%d" i, Rng.int rng 1_000_000)) in
        let out, ts = Harness.time_stats (fun () -> Sorting.run Runner.Staged items) in
        let t_staged = ts.Harness.best_s in
        assert (Sorting.is_sorted_permutation ~input:items out);
        let _, t_proc = Harness.time (fun () -> Sorting.procedural items) in
        let _, t_list = Harness.time (fun () -> List.sort (fun (_, a) (_, b) -> compare a b) items) in
        record ~exp:"E2" ~n ~wall:t_staged ~median:ts.Harness.median_s
          (counters_of (Sorting.program items));
        let fn = float_of_int n in
        ( [ string_of_int n; Harness.sec t_staged; Harness.sec t_proc; Harness.sec t_list;
            Harness.ratio t_staged t_proc ]
          :: rows,
          (fn, t_staged) :: sp,
          (fn, t_proc) :: pp ))
      ([], [], []) sizes
  in
  Harness.table ~title:"E2  Sorting (paper claim C2: O(n log n))"
    ~header:[ "n"; "staged(s)"; "heap-sort(s)"; "List.sort(s)"; "staged/heap" ]
    (List.rev rows);
  Printf.printf "E2 slopes: staged %s, heap-sort %s\n"
    (Harness.slope (Harness.loglog_slope staged_pts))
    (Harness.slope (Harness.loglog_slope proc_pts))

(* ------------------------------------------------------------------ *)
(* E3 — Matching (claim C3: O(e log e), all arcs queued)               *)
(* ------------------------------------------------------------------ *)

let matching_arcs seed n_arcs =
  let rng = Rng.create seed in
  let seen = Hashtbl.create (2 * n_arcs) in
  let side = max 8 (n_arcs / 4) in
  let rec go acc k guard =
    if k = 0 || guard = 0 then acc
    else
      let x = Rng.int rng side and y = side + Rng.int rng side in
      if Hashtbl.mem seen (x, y) then go acc k (guard - 1)
      else begin
        Hashtbl.add seen (x, y) ();
        go ((x, y, 1 + Rng.int rng 1_000_000) :: acc) (k - 1) guard
      end
  in
  go [] n_arcs (100 * n_arcs)

let e3 () =
  let sizes = scale [ 1024; 2048; 4096; 8192; 16384 ] in
  let rows, staged_pts =
    List.fold_left
      (fun (rows, sp) e ->
        let arcs = matching_arcs (3 * e) e in
        let r_staged, t_staged = Harness.time (fun () -> Matching.run Runner.Staged arcs) in
        let r_proc, t_proc = Harness.time (fun () -> Matching.procedural arcs) in
        assert (r_staged.Matching.arcs = r_proc.Matching.arcs);
        record ~exp:"E3" ~n:e ~wall:t_staged (counters_of (Matching.program arcs));
        ( [ string_of_int e; string_of_int (List.length r_staged.Matching.arcs);
            Harness.sec t_staged; Harness.sec t_proc; Harness.ratio t_staged t_proc ]
          :: rows,
          (float_of_int e, t_staged) :: sp ))
      ([], []) sizes
  in
  Harness.table ~title:"E3  Greedy matching (paper claim C3: O(e log e), Q holds all e arcs)"
    ~header:[ "arcs"; "matched"; "staged(s)"; "procedural(s)"; "staged/proc" ]
    (List.rev rows);
  Printf.printf "E3 slope: staged %s\n" (Harness.slope (Harness.loglog_slope staged_pts))

(* ------------------------------------------------------------------ *)
(* E4 — Kruskal (claim C4: O(e*n) declarative vs O(e log e) classic)   *)
(* ------------------------------------------------------------------ *)

let e4 () =
  let sizes = scale [ 60; 120; 240; 480 ] in
  let rows, staged_pts, proc_pts =
    List.fold_left
      (fun (rows, sp, pp) n ->
        let g = Graph_gen.random_connected ~seed:(400 + n) ~nodes:n ~extra_edges:(3 * n) in
        let oracle = Graph_gen.mst_weight g in
        let r_staged, t_staged = Harness.time ~repeat:1 (fun () -> Kruskal.run Runner.Staged g) in
        let r_proc, t_proc = Harness.time (fun () -> Kruskal.procedural g) in
        let _, t_norank = Harness.time (fun () -> Kruskal.procedural ~by_rank:false g) in
        assert (r_staged.Kruskal.weight = oracle && r_proc.Kruskal.weight = oracle);
        record ~exp:"E4" ~n ~wall:t_staged (counters_of (Kruskal.program g));
        let fn = float_of_int n in
        ( [ string_of_int n; string_of_int (4 * n); Harness.sec t_staged; Harness.sec t_proc;
            Harness.sec t_norank; Harness.ratio t_staged t_proc ]
          :: rows,
          (fn, t_staged) :: sp,
          (fn, t_proc) :: pp ))
      ([], [], []) sizes
  in
  Harness.table
    ~title:
      "E4  Kruskal (paper claim C4: declarative O(e*n) — full relabeling, no \
       merge-small-into-large — vs classical O(e log e))"
    ~header:[ "n"; "e"; "staged(s)"; "union-find(s)"; "uf-no-rank(s)"; "staged/uf" ]
    (List.rev rows);
  Printf.printf
    "E4 slopes vs n (e = 4n): staged %s (paper predicts ~2: e*n), procedural %s (~1: e log e)\n"
    (Harness.slope (Harness.loglog_slope staged_pts))
    (Harness.slope (Harness.loglog_slope proc_pts))

(* ------------------------------------------------------------------ *)
(* E5 — Greedy TSP chains (sub-optimals)                               *)
(* ------------------------------------------------------------------ *)

let e5 () =
  let sizes = scale [ 32; 64; 128; 256 ] in
  let rows, staged_pts =
    List.fold_left
      (fun (rows, sp) n ->
        let g = Graph_gen.complete ~seed:(500 + n) ~nodes:n in
        let e = List.length g.Graph_gen.edges in
        let r_staged, t_staged = Harness.time ~repeat:1 (fun () -> Tsp.run Runner.Staged g) in
        let r_proc, t_proc = Harness.time (fun () -> Tsp.procedural g) in
        assert (Tsp.is_hamiltonian_path g r_staged);
        assert (r_staged.Tsp.chain = r_proc.Tsp.chain);
        record ~exp:"E5" ~n ~wall:t_staged (counters_of (Tsp.program g));
        ( [ string_of_int n; string_of_int e; Harness.sec t_staged; Harness.sec t_proc;
            string_of_int r_staged.Tsp.cost ]
          :: rows,
          (float_of_int e, t_staged) :: sp ))
      ([], []) sizes
  in
  Harness.table
    ~title:"E5  Greedy TSP chain on complete graphs (identical tours to procedural greedy)"
    ~header:[ "n"; "e"; "staged(s)"; "procedural(s)"; "chain cost" ]
    (List.rev rows);
  Printf.printf "E5 slope vs e: staged %s\n" (Harness.slope (Harness.loglog_slope staged_pts))

(* ------------------------------------------------------------------ *)
(* E6 — Huffman                                                        *)
(* ------------------------------------------------------------------ *)

let e6 () =
  let sizes = scale [ 32; 64; 128; 256 ] in
  let rows, staged_pts =
    List.fold_left
      (fun (rows, sp) n ->
        let letters = Text_gen.zipf ~seed:(600 + n) ~letters:n in
        let r_staged, t_staged = Harness.time ~repeat:1 (fun () -> Huffman.run Runner.Staged letters) in
        let optimal, t_proc = Harness.time (fun () -> Huffman.procedural_cost letters) in
        assert (r_staged.Huffman.internal_cost = optimal);
        record ~exp:"E6" ~n ~wall:t_staged (counters_of (Huffman.program letters));
        ( [ string_of_int n; Harness.sec t_staged; Harness.sec t_proc;
            string_of_int r_staged.Huffman.internal_cost ]
          :: rows,
          (float_of_int n, t_staged) :: sp ))
      ([], []) sizes
  in
  Harness.table
    ~title:
      "E6  Huffman trees (engine is Theta(n^2): the feasible relation is quadratic; \
       two-queue baseline is O(n log n); equal optimal costs)"
    ~header:[ "letters"; "staged(s)"; "two-queue(s)"; "tree cost" ]
    (List.rev rows);
  Printf.printf "E6 slope vs n: staged %s (expected ~2)\n"
    (Harness.slope (Harness.loglog_slope staged_pts))

(* ------------------------------------------------------------------ *)
(* E7 — Choice-fixpoint throughput (Example 1 at scale)                *)
(* ------------------------------------------------------------------ *)

let e7 () =
  let sizes = scale [ 200; 400; 800; 1600 ] in
  let rows =
    List.map
      (fun n ->
        let prog =
          Assignment.random_takes ~seed:n ~students:n ~courses:n ~enrollments:(4 * n)
          @ Parser.parse_program Assignment.example1_source
        in
        let (db, stats), t = Harness.time ~repeat:1 (fun () -> Choice_fixpoint.run prog) in
        let chosen = List.length (Database.facts_of db "a_st") in
        record ~exp:"E7" ~n:(4 * n) ~wall:t (counters_of prog);
        [ string_of_int (4 * n); string_of_int chosen;
          string_of_int stats.Choice_fixpoint.gamma_steps;
          string_of_int stats.Choice_fixpoint.candidates_examined; Harness.sec t ])
      sizes
  in
  Harness.table ~title:"E7  Choice fixpoint throughput (Example 1, random bipartite takes)"
    ~header:[ "enrollments"; "assigned"; "gamma steps"; "candidates"; "reference(s)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E8 — Theorem 1 in practice: stability of produced models            *)
(* ------------------------------------------------------------------ *)

let e8 () =
  let programs =
    [ ("example1", Assignment.program Assignment.example1_source);
      ("bi_st_c", Assignment.program Assignment.bi_st_c_source);
      ("sorting", Sorting.program (List.init 12 (fun i -> (Printf.sprintf "x%d" i, (i * 7) mod 23))));
      ("prim", Prim.program ~root:0 (Graph_gen.random_connected ~seed:81 ~nodes:8 ~extra_edges:8));
      ("kruskal", Kruskal.program (Graph_gen.random_connected ~seed:82 ~nodes:6 ~extra_edges:5));
      ("matching", Matching.program [ (0, 9, 3); (0, 8, 1); (1, 9, 2); (2, 7, 5) ]);
      ("tsp", Tsp.program (Graph_gen.complete ~seed:83 ~nodes:6));
      ("huffman", Huffman.program (Text_gen.zipf ~seed:84 ~letters:6));
      ("dijkstra", Dijkstra.program ~root:0 (Graph_gen.random_connected ~seed:85 ~nodes:8 ~extra_edges:8));
      ("scheduling", Scheduling.program (Interval_gen.random ~seed:86 ~jobs:7 ~horizon:40)) ]
  in
  let rows =
    List.map
      (fun (name, prog) ->
        let reference = Stable.is_stable prog (Choice_fixpoint.model prog) in
        let staged = Stable.is_stable prog (Stage_engine.model prog) in
        [ name; string_of_bool reference; string_of_bool staged ])
      programs
  in
  Harness.table ~title:"E8  Theorem 1: produced models are stable models of the rewriting"
    ~header:[ "program"; "reference stable"; "staged stable" ]
    rows

(* ------------------------------------------------------------------ *)
(* E9 — The compile-time class (Section 4 checker verdicts)            *)
(* ------------------------------------------------------------------ *)

let replace_once ~pattern ~by src =
  let n = String.length pattern in
  let rec find i =
    if i + n > String.length src then src
    else if String.sub src i n = pattern then
      String.sub src 0 i ^ by ^ String.sub src (i + n) (String.length src - i - n)
    else find (i + 1)
  in
  find 0

let e9 () =
  let programs =
    [ ("example1", Assignment.example1_source); ("bi_st_c", Assignment.bi_st_c_source);
      ("sorting", Sorting.source); ("prim", Prim.source ~root:0);
      ( "prim least(C,())",
        replace_once ~pattern:"least(C, I)" ~by:"least(C)" (Prim.source ~root:0) );
      ("matching", Matching.source); ("tsp", Tsp.source); ("huffman", Huffman.source);
      ("kruskal", Kruskal.source); ("dijkstra", Dijkstra.source ~root:0);
      ("scheduling", Scheduling.source); ("vertex cover", Vertex_cover.source);
      ("set cover", Set_cover.source) ]
  in
  let rows =
    List.map
      (fun (name, src) ->
        let report = Stage.analyze (Parser.parse_program src) in
        let issues = List.concat_map (fun c -> c.Stage.issues) report.Stage.cliques in
        let notes = List.concat_map (fun c -> c.Stage.notes) report.Stage.cliques in
        [ name; string_of_bool report.Stage.stage_stratified;
          string_of_int (List.length issues); string_of_int (List.length notes) ])
      programs
  in
  Harness.table ~title:"E9  Section-4 checker verdicts (Kruskal is beyond the class, as the paper says)"
    ~header:[ "program"; "stage-stratified"; "issues"; "notes" ]
    rows

(* ------------------------------------------------------------------ *)
(* E10 — Extensions: Dijkstra and interval scheduling                  *)
(* ------------------------------------------------------------------ *)

let e10 () =
  let sizes = scale [ 256; 512; 1024; 2048 ] in
  let rows, dij_pts =
    List.fold_left
      (fun (rows, dp) n ->
        let g = Graph_gen.random_connected ~seed:(700 + n) ~nodes:n ~extra_edges:(7 * n) in
        let d_staged, t_dij = Harness.time ~repeat:1 (fun () -> Dijkstra.run Runner.Staged g) in
        let d_proc, t_dij_proc = Harness.time (fun () -> Dijkstra.procedural g) in
        assert (List.sort compare d_staged = List.sort compare d_proc);
        let jobs = Interval_gen.random ~seed:(700 + n) ~jobs:n ~horizon:(20 * n) in
        let s_staged, t_sched = Harness.time ~repeat:1 (fun () -> Scheduling.run Runner.Staged jobs) in
        assert (s_staged = Scheduling.procedural jobs);
        record ~exp:"E10" ~n ~wall:t_dij (counters_of (Dijkstra.program ~root:0 g));
        ( [ string_of_int n; Harness.sec t_dij; Harness.sec t_dij_proc; Harness.sec t_sched ]
          :: rows,
          (float_of_int n, t_dij) :: dp ))
      ([], []) sizes
  in
  Harness.table ~title:"E10  Extension programs: Dijkstra SSSP and earliest-finish scheduling"
    ~header:[ "n"; "dijkstra staged(s)"; "dijkstra proc(s)"; "scheduling staged(s)" ]
    (List.rev rows);
  Printf.printf "E10 slope (dijkstra vs n, e = 8n): %s\n"
    (Harness.slope (Harness.loglog_slope dij_pts))

(* ------------------------------------------------------------------ *)
(* E12 — approximation programs: vertex cover and set cover            *)
(* ------------------------------------------------------------------ *)

let e12 () =
  let rows =
    List.map
      (fun n ->
        let g = Graph_gen.random_connected ~seed:(1200 + n) ~nodes:n ~extra_edges:(2 * n) in
        let vc, t_vc = Harness.time ~repeat:1 (fun () -> Vertex_cover.run Runner.Staged g) in
        assert (Vertex_cover.is_cover g vc);
        let sets = Set_cover.random_instance ~seed:(1300 + n) ~sets:(n / 4) ~universe:n in
        let sc, t_sc = Harness.time ~repeat:1 (fun () -> Set_cover.run Runner.Staged sets) in
        assert (Set_cover.coverage sets sc = Set_cover.coverable sets);
        record ~exp:"E12" ~n ~wall:t_vc (counters_of (Vertex_cover.program g));
        [ string_of_int n; Harness.sec t_vc;
          string_of_int (List.length vc.Vertex_cover.cover);
          Harness.sec t_sc; string_of_int (List.length sc) ])
      (scale [ 128; 256; 512; 1024 ])
  in
  Harness.table
    ~title:
      "E12  Approximation programs: vertex cover (2-approx, no extremum) and set cover \
       (H_k-approx via count aggregates)"
    ~header:[ "n"; "vcover(s)"; "cover size"; "setcover(s)"; "sets picked" ]
    rows

(* ------------------------------------------------------------------ *)
(* E13 — resource governor on the adversarial corpus                   *)
(* ------------------------------------------------------------------ *)

(* Non-terminating programs under a max-facts budget: every governed
   run must come back Partial, and the per-budget exhaustion count is
   recorded into BENCH_E13.json (the smoke run checks it like every
   other counter). *)
let e13 () =
  let nat = Parser.parse_program "nat(z). nat(s(X)) <- nat(X)." in
  let blowup =
    Parser.parse_program "p(z, z). p(s(X), Y) <- p(X, Y). p(X, s(Y)) <- p(X, Y)."
  in
  let choice =
    Parser.parse_program
      "grow(z). grow(s(X)) <- pick(X, I). pick(X, I) <- grow(X), next(I)."
  in
  let partial = function Limits.Partial _ -> true | Limits.Complete _ -> false in
  let runs : (string * (Limits.t -> bool)) list =
    [ ("nat/ref", fun l -> partial (Choice_fixpoint.run_governed ~limits:l nat));
      ("nat/staged", fun l -> partial (Stage_engine.run_governed ~limits:l nat));
      ("blowup/staged", fun l -> partial (Stage_engine.run_governed ~limits:l blowup));
      ("choice/ref", fun l -> partial (Choice_fixpoint.run_governed ~limits:l choice));
      ("choice/staged", fun l -> partial (Stage_engine.run_governed ~limits:l choice)) ]
  in
  let rows =
    List.map
      (fun budget ->
        let exhausted = ref 0 in
        let (), t =
          Harness.time ~repeat:1 (fun () ->
              List.iter
                (fun (_, run) ->
                  if run (Limits.create ~max_facts:budget ()) then incr exhausted)
                runs)
        in
        assert (!exhausted = List.length runs);
        record ~exp:"E13" ~n:budget ~wall:t
          [ ("budget_exhausted", !exhausted); ("governed_runs", List.length runs) ];
        [ string_of_int budget; Harness.sec t;
          Printf.sprintf "%d/%d" !exhausted (List.length runs) ])
      (* The adversarial values are deep [s(...)] chains, so hashing a
         fact costs O(depth) and the reference gamma loop is ~O(n^3) in
         the budget — 8_000 took over an hour, which made the full
         suite unrunnable.  2_000 still exercises every governed path
         for minutes of derivation. *)
      (scale [ 500; 1_000; 2_000 ])
  in
  Harness.table
    ~title:
      "E13  Resource governor: adversarial (non-terminating) programs under a max-facts \
       budget — every governed run stops with a Partial outcome"
    ~header:[ "max_facts"; "wall(s)"; "exhausted/runs" ]
    rows

(* ------------------------------------------------------------------ *)
(* E11 — magic sets: goal-directed vs full bottom-up evaluation        *)
(* ------------------------------------------------------------------ *)

let e11 () =
  let chain n =
    List.init n (fun i -> Ast.fact "e" [ Value.Int i; Value.Int (i + 1) ])
    @ Parser.parse_program "tc(X, Y) <- e(X, Y). tc(X, Y) <- e(X, Z), tc(Z, Y)."
  in
  let rows =
    List.map
      (fun n ->
        let prog = chain n in
        let query =
          Ast.atom "tc" [ Ast.int (n - 5); Ast.Var "X" ]
        in
        let a, t_magic = Harness.time ~repeat:1 (fun () -> Magic.answers ~query prog) in
        let b, t_full =
          Harness.time ~repeat:1 (fun () -> Magic.answers_unoptimized ~query prog)
        in
        assert (List.length a = List.length b);
        record ~exp:"E11" ~n ~wall:t_magic [];
        let m_facts, f_facts = Magic.facts_computed ~query prog in
        [ string_of_int n; Harness.sec t_magic; Harness.sec t_full;
          string_of_int m_facts; string_of_int f_facts; Harness.ratio t_full t_magic ])
      (scale [ 100; 200; 400; 800 ])
  in
  Harness.table
    ~title:
      "E11  Magic sets: point query tc(n-5, X) on an n-chain — goal-directed vs full \
       evaluation (substrate feature; not a claim of the paper)"
    ~header:[ "n"; "magic(s)"; "full(s)"; "magic facts"; "full facts"; "speedup" ]
    rows

(* ------------------------------------------------------------------ *)
(* E14 — allocation kernels: minor-heap words per derived fact         *)
(* ------------------------------------------------------------------ *)

(* The join-kernel claim: with interned symbols, array-backed indexes
   and precompiled terms, a staged run allocates a small bounded number
   of minor-heap words per derived fact — and the ahead-of-time
   compiled closure chains (--compiled) strictly fewer.  Each kernel is
   run twice, interpreted then compiled, GC counters bracketing a
   single uninstrumented run each (telemetry itself allocates), and the
   two models are checked byte-identical before either point is
   recorded.  Returns the worst words/fact seen across BOTH modes,
   which the perf-smoke gate bounds — compiled execution lives under
   the same budget as the interpreter. *)
let e14 () =
  let mk_sort n =
    let rng = Rng.create 7 in
    Sorting.program (List.init n (fun i -> (Printf.sprintf "x%d" i, Rng.int rng 1_000_000)))
  in
  let mk_prim n =
    Prim.program ~root:0 (Graph_gen.random_connected ~seed:(100 + n) ~nodes:n ~extra_edges:(7 * n))
  in
  let mk_matching e = Matching.program (matching_arcs (3 * e) e) in
  let kernels =
    [ ("sort", mk_sort, scale [ 4096; 16384 ]);
      ("prim", mk_prim, scale [ 256; 1024 ]);
      ("matching", mk_matching, scale [ 2048; 8192 ]) ]
  in
  let worst = ref 0.0 in
  let measure ~compiled prog =
    Gc.compact ();
    let w0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let db, _ = Stage_engine.run ~compiled prog in
    let wall = Unix.gettimeofday () -. t0 in
    (db, wall, Gc.minor_words () -. w0)
  in
  let rows =
    List.concat_map
      (fun (name, mk, sizes) ->
        List.map
          (fun n ->
            let prog = mk n in
            let db, wall, dw = measure ~compiled:false prog in
            let db_c, wall_c, dw_c = measure ~compiled:true prog in
            if
              not
                (String.equal
                   (Format.asprintf "%a" Database.pp db)
                   (Format.asprintf "%a" Database.pp db_c))
            then begin
              Printf.eprintf "E14: %s n=%d compiled model differs from interpreted\n" name n;
              exit 1
            end;
            let facts = Database.cardinal db in
            let wpf = dw /. float_of_int facts in
            let wpf_c = dw_c /. float_of_int facts in
            worst := Float.max !worst (Float.max wpf wpf_c);
            record ~exp:"E14" ~n ~wall
              [ ("minor_words", int_of_float dw); ("facts", facts);
                ("words_per_fact", int_of_float (Float.round wpf));
                ("compiled_minor_words", int_of_float dw_c);
                ("compiled_words_per_fact", int_of_float (Float.round wpf_c));
                ("compiled_wall_us", int_of_float (wall_c *. 1e6));
                ("top_heap_words", Harness.top_heap_words ()) ];
            [ name; string_of_int n; Harness.sec wall; Harness.sec wall_c;
              Printf.sprintf "%.1f" wpf; Printf.sprintf "%.1f" wpf_c;
              Harness.ratio wpf wpf_c ])
          sizes)
      kernels
  in
  Harness.table
    ~title:
      "E14  Allocation kernels: minor-heap words per derived fact, staged engine, \
       interpreted vs --compiled (byte-identical models)"
    ~header:
      [ "kernel"; "n"; "staged(s)"; "compiled(s)"; "words/fact"; "compiled w/f"; "improvement" ]
    rows;
  !worst

(* ------------------------------------------------------------------ *)
(* E15 — gbcd daemon throughput and latency                            *)
(* ------------------------------------------------------------------ *)

(* An in-process 4-worker gbcd on a Unix-domain socket, loaded by N
   concurrent client sessions each replaying the 13 shipped exemplar
   programs (Load + Run per program, several rounds).  Records
   requests/s and the p50/p99 request latency into BENCH_E15.json;
   every response is checked — a served error or partial counts as a
   failure, keeping the numbers honest. *)

let e15_exemplars =
  [ "example1.dl"; "bi_st_c.dl"; "sorting.dl"; "prim.dl"; "kruskal.dl";
    "matching.dl"; "huffman.dl"; "tsp.dl"; "dijkstra.dl"; "scheduling.dl";
    "vertex_cover.dl"; "set_cover.dl"; "transitive_closure.dl" ]

(* pick ["key": <int>] out of a stats json, scanning from the first
   occurrence of [section] so repeated field names across nested
   objects resolve to the right one (floats truncate at the point) *)
let json_int_after json ~section key =
  let find sub from =
    let n = String.length sub in
    let rec go i =
      if i + n > String.length json then None
      else if String.sub json i n = sub then Some (i + n)
      else go (i + 1)
    in
    go from
  in
  match find ("\"" ^ section ^ "\"") 0 with
  | None -> 0
  | Some s -> (
    match find ("\"" ^ key ^ "\":") s with
    | None -> 0
    | Some p ->
      let p = ref p in
      while !p < String.length json && json.[!p] = ' ' do
        incr p
      done;
      let q = ref !p in
      while
        !q < String.length json
        && (match json.[!q] with '0' .. '9' | '-' -> true | _ -> false)
      do
        incr q
      done;
      if !q = !p then 0 else int_of_string (String.sub json !p (!q - !p)))

let e15 () =
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let sources = List.map (fun n -> read_file ("../programs/" ^ n)) e15_exemplars in
  let sessions = if smoke then 2 else 8 in
  let rounds = if smoke then 1 else 3 in
  let sock = Printf.sprintf "gbcd_e15_%d.sock" (Unix.getpid ()) in
  let cfg =
    { Server.default_config with port = None; unix_path = Some sock; workers = 4 }
  in
  match Server.create cfg with
  | Error msg ->
    Printf.eprintf "E15: server create failed: %s\n" msg
  | Ok srv ->
    let runner = Domain.spawn (fun () -> Server.run srv) in
    let errors = Atomic.make 0 in
    let lat_m = Mutex.create () in
    let latencies = ref [] in
    let session _i =
      let rec conn tries =
        match Client.connect_unix sock with
        | c -> c
        | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
          when tries > 0 ->
          Unix.sleepf 0.02;
          conn (tries - 1)
      in
      let c = conn 100 in
      let mine = ref [] in
      let timed req check =
        let t0 = Unix.gettimeofday () in
        let resp = Client.rpc c req in
        mine := (Unix.gettimeofday () -. t0) :: !mine;
        if not (check resp) then Atomic.incr errors
      in
      for _ = 1 to rounds do
        List.iter
          (fun src ->
            timed (Protocol.Load src) (function Protocol.Loaded _ -> true | _ -> false);
            timed
              (Protocol.Run
                 { engine = Protocol.Staged; seed = None; preds = None;
                   budget = Protocol.no_budget })
              (function Protocol.Model { complete; _ } -> complete | _ -> false))
          sources
      done;
      Client.close c;
      Mutex.protect lat_m (fun () -> latencies := !mine @ !latencies)
    in
    let t0 = Unix.gettimeofday () in
    let threads = List.init sessions (fun i -> Thread.create session i) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    (* one more connection reads the server's queue-wait histogram:
       time from frame parse to worker dequeue, recorded separately
       from the client-observed latency so service time and queueing
       are distinguishable in the json *)
    let qw_mean, qw_p50, qw_p99 =
      let rec conn tries =
        match Client.connect_unix sock with
        | c -> c
        | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
          when tries > 0 ->
          Unix.sleepf 0.02;
          conn (tries - 1)
      in
      let c = conn 50 in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.rpc c Protocol.Stats with
          | Protocol.Stats_json json ->
            ( json_int_after json ~section:"queue_wait" "mean_us",
              json_int_after json ~section:"queue_wait" "p50_us",
              json_int_after json ~section:"queue_wait" "p99_us" )
          | _ -> (0, 0, 0))
    in
    Server.shutdown srv;
    Domain.join runner;
    (try Unix.unlink sock with Unix.Unix_error _ | Sys_error _ -> ());
    let lats = Array.of_list !latencies in
    Array.sort compare lats;
    let n_req = Array.length lats in
    let pct p =
      if n_req = 0 then 0.0
      else lats.(min (n_req - 1) (int_of_float (p *. float_of_int n_req)))
    in
    let us t = int_of_float (t *. 1e6) in
    let rps = if wall > 0.0 then float_of_int n_req /. wall else 0.0 in
    record ~exp:"E15" ~n:sessions ~wall
      [ ("requests", n_req); ("errors", Atomic.get errors); ("workers", 4);
        ("rounds", rounds); ("rps", int_of_float rps); ("p50_us", us (pct 0.50));
        ("p99_us", us (pct 0.99)); ("queue_wait_mean_us", qw_mean);
        ("queue_wait_p50_us", qw_p50); ("queue_wait_p99_us", qw_p99) ];
    Harness.table
      ~title:
        "E15  gbcd daemon: concurrent sessions replaying the exemplar corpus \
         (4 workers, Unix-domain socket, Load+Run per program)"
      ~header:[ "sessions"; "requests"; "errors"; "wall(s)"; "req/s"; "p50(us)"; "p99(us)" ]
      [ [ string_of_int sessions; string_of_int n_req; string_of_int (Atomic.get errors);
          Harness.sec wall; Printf.sprintf "%.0f" rps; string_of_int (us (pct 0.50));
          string_of_int (us (pct 0.99)) ] ]

(* ------------------------------------------------------------------ *)
(* E16 — domains scaling: sharded saturation at jobs 1/2/4             *)
(* ------------------------------------------------------------------ *)

(* The data-parallel mode shards each flat rule's delta across OCaml
   domains (Par.run); by construction the model — and every telemetry
   counter — is byte-identical to the sequential run, and every point
   below re-verifies that before its timing is recorded.  The scaling
   curve itself is machine-dependent: on a single-core host the extra
   domains only time-slice and the curve is flat, which the json
   records honestly (no speedup assertion here — byte-identity is the
   correctness gate, the curve is the measurement). *)

let e16 () =
  let db_bytes db = Format.asprintf "%a" Database.pp db in
  let jobs_levels = [ 1; 2; 4 ] in
  let curve (tag, workload_id, n, prog) =
    let seq_bytes = ref "" in
    let t1 = ref 0.0 in
    List.map
      (fun jobs ->
        let result = ref None in
        let _, ts =
          Harness.time_stats (fun () ->
              result := Some (fst (Choice_fixpoint.run ~jobs prog)))
        in
        let bytes = db_bytes (Option.get !result) in
        if jobs = 1 then begin
          seq_bytes := bytes;
          t1 := ts.Harness.best_s
        end
        else if not (String.equal !seq_bytes bytes) then begin
          Printf.eprintf "E16: %s n=%d jobs=%d model differs from the sequential run\n"
            tag n jobs;
          exit 1
        end;
        let telemetry = Telemetry.create () in
        ignore (Choice_fixpoint.run ~telemetry ~jobs prog);
        record ~exp:"E16" ~n ~wall:ts.Harness.best_s ~median:ts.Harness.median_s
          (("jobs", jobs) :: ("workload_id", workload_id) :: Telemetry.totals telemetry);
        [ tag; string_of_int n; string_of_int jobs; Harness.sec ts.Harness.best_s;
          Harness.sec ts.Harness.median_s; Harness.ratio !t1 ts.Harness.best_s ])
      jobs_levels
  in
  let prim_workloads =
    List.map
      (fun n ->
        let g = Graph_gen.random_connected ~seed:(1600 + n) ~nodes:n ~extra_edges:(4 * n) in
        ("prim", 1, n, Prim.program ~root:0 g))
      (scale [ 96; 192; 320 ])
  in
  let sort_workloads =
    List.map
      (fun n ->
        let rng = Rng.create 16 in
        let items = List.init n (fun i -> (Printf.sprintf "x%d" i, Rng.int rng 1_000_000)) in
        ("sort", 2, n, Sorting.program items))
      (scale [ 128; 256; 512 ])
  in
  let rows = List.concat_map curve (prim_workloads @ sort_workloads) in
  Harness.table
    ~title:
      "E16  Data-parallel saturation (reference engine, --jobs scaling; model \
       byte-identical at every point)"
    ~header:[ "workload"; "n"; "jobs"; "best(s)"; "median(s)"; "speedup vs j=1" ]
    rows

(* ------------------------------------------------------------------ *)
(* E17 — incremental view maintenance: single-fact update latency      *)
(* ------------------------------------------------------------------ *)

(* A session that has run its program to a complete model keeps it
   materialized; the next run after a single-fact assert is served by
   incremental maintenance (Ivm) — a delta step over the one new row —
   instead of a from-scratch fixpoint.  Measured on a transitive-
   closure chain (model of n(n-1)/2 facts, the honest worst case for
   re-evaluation): each update asserts one edge from a fresh source
   into the chain's sink, deriving exactly one new tc fact.  Every
   update is checked to have been served incrementally (zero
   fallbacks); the speedup over the from-scratch run is the claim. *)

let e17 () =
  let sizes = scale [ 128; 256; 512; 1024 ] in
  let cache = Program_cache.create () in
  let reps = if smoke then 3 else 10 in
  let rows =
    List.map
      (fun n ->
        let buf = Buffer.create (32 * n) in
        Buffer.add_string buf
          "tc(X, Y) <- edge(X, Y).\ntc(X, Z) <- tc(X, Y), edge(Y, Z).\n";
        for i = 1 to n - 1 do
          Buffer.add_string buf (Printf.sprintf "edge(%d, %d).\n" i (i + 1))
        done;
        let src = Buffer.contents buf in
        let session () =
          let s = Session.create ~cache ~id:0 () in
          (match Session.load s src with
          | Ok _ -> ()
          | Error (_, m) -> failwith ("E17 load: " ^ m));
          s
        in
        let run s =
          match
            Session.run s ~engine:Protocol.Staged ~seed:None ~jobs:1
              ~limits:Limits.unlimited ~telemetry:Telemetry.none
          with
          | Ok (Limits.Complete db) -> db
          | _ -> failwith "E17: run did not complete"
        in
        (* from-scratch latency: a fresh session's first run (the load
           is a cache hit; the evaluation dominates) *)
        let model, t_full =
          Harness.time (fun () ->
              let s = session () in
              run s)
        in
        let model_facts =
          List.fold_left
            (fun acc p -> acc + List.length (Database.facts_of model p))
            0 (Database.preds model)
        in
        (* update latency: one warm session, [reps] distinct
           single-fact asserts, each followed by a (maintained) run *)
        let s = session () in
        ignore (run s);
        let samples =
          Array.init reps (fun k ->
              let fact = Printf.sprintf "edge(%d, %d)." (10_000_000 + k) n in
              let t0 = Unix.gettimeofday () in
              (match Session.assert_facts s fact with
              | Ok _ -> ()
              | Error (_, m) -> failwith ("E17 assert: " ^ m));
              ignore (run s);
              Unix.gettimeofday () -. t0)
        in
        Array.sort compare samples;
        let t_inc = samples.(0) in
        let t_inc_median = samples.(reps / 2) in
        let c = s.Session.counters in
        if c.Session.ivm_fallbacks > 0 || c.Session.runs_incremental < reps then begin
          Printf.eprintf "E17: n=%d updates were not served incrementally\n" n;
          exit 1
        end;
        (* byte-identity spot check against from-scratch on the small
           sizes (rendering a half-million-fact model is not a timing) *)
        if n <= 256 then begin
          let fresh = session () in
          for k = 0 to reps - 1 do
            match
              Session.assert_facts fresh
                (Printf.sprintf "edge(%d, %d)." (10_000_000 + k) n)
            with
            | Ok _ -> ()
            | Error (_, m) -> failwith ("E17 assert: " ^ m)
          done;
          let b1 = Session.render_model (run s) in
          let b2 = Session.render_model (run fresh) in
          if not (String.equal b1 b2) then begin
            Printf.eprintf "E17: n=%d maintained model differs from from-scratch\n" n;
            exit 1
          end
        end;
        let us t = int_of_float (t *. 1e6) in
        let speedup = if t_inc > 0.0 then t_full /. t_inc else 0.0 in
        record ~exp:"E17" ~n ~wall:t_inc ~median:t_inc_median
          [ ("model_facts", model_facts); ("full_us", us t_full);
            ("inc_best_us", us t_inc); ("inc_median_us", us t_inc_median);
            ("updates", reps); ("speedup_x10", int_of_float (speedup *. 10.0)) ];
        [ string_of_int n; string_of_int model_facts; Harness.sec t_full;
          Printf.sprintf "%d" (us t_inc); Printf.sprintf "%d" (us t_inc_median);
          Printf.sprintf "%.0fx" speedup ])
      sizes
  in
  Harness.table
    ~title:
      "E17  Incremental maintenance: single-fact assert latency vs model size \
       (TC chain, staged engine; update = assert + maintained run)"
    ~header:[ "n"; "model facts"; "full run(s)"; "update best(us)"; "update median(us)"; "speedup" ]
    rows

(* ------------------------------------------------------------------ *)
(* E18 — durability: WAL overhead and cold-recovery time               *)
(* ------------------------------------------------------------------ *)

(* Two questions the durability layer must answer with numbers:

   1. What does the write-ahead log cost on the serving path?  The E15
      workload, extended with one mutation per program (Load + Assert
      + Run), is replayed against the same in-process daemon twice —
      ephemeral, then durable with the default batch:16 fsync — and
      the req/s ratio is the overhead.  The budget is 20% (asserted by
      the --e18 gate): records are a few dozen bytes and evaluation
      dominates each request, so exceeding it means the logging path
      regressed.

   2. How long does cold recovery take as the model grows?  A durable
      session materializes the TC chain at n, the server shuts down,
      and Server.create on the same data dir — program store warm-up,
      snapshot read, WAL-tail replay, digest-verified re-evaluation —
      is timed before any listener binds. *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let e18 () =
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let rec conn_retry sock tries =
    match Client.connect_unix sock with
    | c -> c
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when tries > 0 ->
      Unix.sleepf 0.02;
      conn_retry sock (tries - 1)
  in
  let run_req =
    Protocol.Run
      { engine = Protocol.Staged; seed = None; preds = None; budget = Protocol.no_budget }
  in
  (* -- 1: req/s with the WAL off vs on ----------------------------- *)
  let sources = List.map (fun n -> read_file ("../programs/" ^ n)) e15_exemplars in
  let sessions = if smoke then 2 else 4 in
  let rounds = if smoke then 1 else 2 in
  let serve ~data_dir =
    let sock =
      Printf.sprintf "gbcd_e18_%d_%s.sock" (Unix.getpid ())
        (if data_dir = None then "off" else "on")
    in
    let cfg =
      { Server.default_config with
        port = None; unix_path = Some sock; workers = 4; data_dir; fsync = Wal.Batch 16 }
    in
    match Server.create cfg with
    | Error msg -> failwith ("E18: server create failed: " ^ msg)
    | Ok srv ->
      let runner = Domain.spawn (fun () -> Server.run srv) in
      let errors = Atomic.make 0 in
      let requests = Atomic.make 0 in
      let session i =
        let c = conn_retry sock 100 in
        let k = ref 0 in
        let rpc req check =
          let resp = Client.rpc c req in
          Atomic.incr requests;
          if not (check resp) then Atomic.incr errors
        in
        for _ = 1 to rounds do
          List.iter
            (fun src ->
              rpc (Protocol.Load src) (function Protocol.Loaded _ -> true | _ -> false);
              incr k;
              rpc
                (Protocol.Assert_facts
                   { text = Printf.sprintf "zz_bench(%d, %d)." i !k; id = None })
                (function Protocol.Asserted _ -> true | _ -> false);
              rpc run_req (function Protocol.Model { complete; _ } -> complete | _ -> false))
            sources
        done;
        Client.close c
      in
      let t0 = Unix.gettimeofday () in
      let threads = List.init sessions (fun i -> Thread.create session i) in
      List.iter Thread.join threads;
      let wall = Unix.gettimeofday () -. t0 in
      Server.shutdown srv;
      Domain.join runner;
      (try Unix.unlink sock with Unix.Unix_error _ | Sys_error _ -> ());
      (float_of_int (Atomic.get requests) /. wall, Atomic.get requests, Atomic.get errors, wall)
  in
  let rps_off, reqs, errs_off, _ = serve ~data_dir:None in
  let dir = Printf.sprintf "gbcd_e18_%d.data" (Unix.getpid ()) in
  rm_rf dir;
  let rps_on, _, errs_on, wall_on = serve ~data_dir:(Some dir) in
  rm_rf dir;
  let overhead = if rps_off > 0.0 then (rps_off -. rps_on) /. rps_off *. 100.0 else 0.0 in
  record ~exp:"E18" ~n:sessions ~wall:wall_on
    [ ("requests", reqs); ("errors", errs_off + errs_on); ("workers", 4);
      ("rps_wal_off", int_of_float rps_off); ("rps_wal_on", int_of_float rps_on);
      ("overhead_pct_x10", int_of_float (overhead *. 10.0));
      ("within_budget", if overhead <= 20.0 then 1 else 0) ];
  Harness.table
    ~title:
      "E18  WAL overhead: the E15 workload + one mutation per program \
       (4 workers, fsync batch:16), ephemeral vs durable"
    ~header:[ "sessions"; "requests"; "errors"; "req/s off"; "req/s on"; "overhead" ]
    [ [ string_of_int sessions; string_of_int reqs; string_of_int (errs_off + errs_on);
        Printf.sprintf "%.0f" rps_off; Printf.sprintf "%.0f" rps_on;
        Printf.sprintf "%.1f%%" overhead ] ];
  (* -- 2: cold recovery vs model size ------------------------------ *)
  let rec_rows =
    List.map
      (fun n ->
        let dir = Printf.sprintf "gbcd_e18r_%d_%d.data" (Unix.getpid ()) n in
        rm_rf dir;
        let sock = Printf.sprintf "gbcd_e18r_%d_%d.sock" (Unix.getpid ()) n in
        let cfg =
          { Server.default_config with
            port = None; unix_path = Some sock; workers = 2; data_dir = Some dir;
            fsync = Wal.Batch 16; snapshot_every = 2 }
        in
        let buf = Buffer.create (32 * n) in
        Buffer.add_string buf "tc(X, Y) <- edge(X, Y).\ntc(X, Z) <- tc(X, Y), edge(Y, Z).\n";
        for i = 1 to n - 1 do
          Buffer.add_string buf (Printf.sprintf "edge(%d, %d).\n" i (i + 1))
        done;
        let src = Buffer.contents buf in
        let model_facts = ref 0 in
        (match Server.create cfg with
         | Error msg -> failwith ("E18: server create failed: " ^ msg)
         | Ok srv ->
           let runner = Domain.spawn (fun () -> Server.run srv) in
           let c = conn_retry sock 100 in
           (match Client.rpc c (Protocol.Load src) with
            | Protocol.Loaded _ -> ()
            | _ -> failwith "E18: load");
           (match
              Client.rpc c
                (Protocol.Assert_facts
                   { text = Printf.sprintf "edge(%d, 1)." (n + 1); id = None })
            with
            | Protocol.Asserted _ -> ()
            | _ -> failwith "E18: assert");
           (match Client.rpc c run_req with
            | Protocol.Model { complete = true; text; _ } ->
              model_facts :=
                List.length
                  (List.filter (fun l -> l <> "") (String.split_on_char '\n' text))
            | _ -> failwith "E18: run");
           (match Client.rpc c (Protocol.Attach None) with
            | Protocol.Attached _ -> ()
            | _ -> failwith "E18: attach");
           Client.close c;
           Server.shutdown srv;
           Domain.join runner);
        (* the cold start: recovery happens inside Server.create *)
        let t0 = Unix.gettimeofday () in
        let t_rec =
          match Server.create cfg with
          | Error msg -> failwith ("E18: recovery create failed: " ^ msg)
          | Ok srv ->
            let t = Unix.gettimeofday () -. t0 in
            let runner = Domain.spawn (fun () -> Server.run srv) in
            Server.shutdown srv;
            Domain.join runner;
            t
        in
        rm_rf dir;
        (try Unix.unlink sock with Unix.Unix_error _ | Sys_error _ -> ());
        record ~exp:"E18" ~n ~wall:t_rec
          [ ("model_facts", !model_facts);
            ("recovery_us", int_of_float (t_rec *. 1e6)) ];
        [ string_of_int n; string_of_int !model_facts;
          Printf.sprintf "%d" (int_of_float (t_rec *. 1e6)) ])
      (scale [ 128; 256; 512 ])
  in
  Harness.table
    ~title:
      "E18  Cold recovery: Server.create on a durable data dir \
       (snapshot + WAL tail, digest-verified) vs model size"
    ~header:[ "n"; "model facts"; "recovery(us)" ]
    rec_rows;
  overhead

(* ------------------------------------------------------------------ *)
(* E19 — scale-out serving: open-loop load through gbc-router          *)
(* ------------------------------------------------------------------ *)

(* Two in-process gbcd backends behind an in-process consistent-hash
   router, driven two ways over the same workload (Load + Run per
   session, cycling three exemplar programs):

   - blocking: classic closed-loop clients — send, wait, check,
     repeat.  Every request pays the full client → router → backend →
     router → client turnaround before the next may start.
   - pipelined: the same connections switched to protocol v2, fed by
     an open-loop generator with exponential (Poisson) inter-arrival
     times provisioned at twice the blocking throughput, bounded only
     by an in-flight window.  The backend always finds the next
     request already queued, so requests/s must come out strictly
     higher.

   Every Model response in BOTH phases is compared byte-for-byte
   against single-shot evaluation of the same program — a router or
   envelope bug fails the bench, not just the numbers.  Each phase
   gets a fresh fleet, and the backends' queue-wait histograms are
   read back before teardown, so BENCH_E19 records queueing
   separately from service time (under open-loop overload the
   pipelined phase's queue-wait is the interesting number). *)

let e19_exemplars = [ "example1.dl"; "prim.dl"; "transitive_closure.dl" ]

let e19 () =
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let progs =
    List.map
      (fun n ->
        let src = read_file ("../programs/" ^ n) in
        let reference =
          Format.asprintf "%a" Database.pp (Stage_engine.model (Parser.parse_program src))
        in
        (src, reference))
      e19_exemplars
  in
  let nprogs = List.length progs in
  let prog i = List.nth progs (i mod nprogs) in
  let sessions = if smoke then 30 else 2000 in
  let gens = 2 in
  let per = sessions / gens in
  let inflight_cap = 64 in
  let backends_n = 2 in
  let errors = Atomic.make 0 in
  let run_req =
    Protocol.Run { engine = Protocol.Staged; seed = None; preds = None; budget = Protocol.no_budget }
  in
  let rec conn_retry sock tries =
    match Client.connect_unix sock with
    | c -> c
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when tries > 0 ->
      Unix.sleepf 0.02;
      conn_retry sock (tries - 1)
  in
  (* a fresh fleet per phase; the result of [f] comes back with the
     backends' queue-wait numbers, read just before teardown *)
  let with_fleet phase f =
    let backs =
      List.init backends_n (fun i ->
          let path = Printf.sprintf "gbcd_e19_%s_b%d_%d.sock" phase i (Unix.getpid ()) in
          let cfg = { Server.default_config with port = None; unix_path = Some path; workers = 2 } in
          match Server.create cfg with
          | Error msg -> failwith ("E19: backend create: " ^ msg)
          | Ok srv -> (path, srv, Domain.spawn (fun () -> Server.run srv)))
    in
    let rsock = Printf.sprintf "gbcd_e19_%s_r_%d.sock" phase (Unix.getpid ()) in
    let rcfg =
      { Router.default_config with
        port = None;
        unix_path = Some rsock;
        backends = List.map (fun (p, _, _) -> Client.Uds p) backs;
        connect_timeout = Some 2.0 }
    in
    match Router.create rcfg with
    | Error msg -> failwith ("E19: router create: " ^ msg)
    | Ok rt ->
      let rrunner = Domain.spawn (fun () -> Router.run rt) in
      let queue_wait () =
        let per_backend =
          List.map
            (fun (p, _, _) ->
              let c = conn_retry p 100 in
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  match Client.rpc c Protocol.Stats with
                  | Protocol.Stats_json json ->
                    ( json_int_after json ~section:"queue_wait" "p50_us",
                      json_int_after json ~section:"queue_wait" "p99_us" )
                  | _ -> (0, 0)))
            backs
        in
        ( List.fold_left (fun a (p, _) -> max a p) 0 per_backend,
          List.fold_left (fun a (_, p) -> max a p) 0 per_backend )
      in
      Fun.protect
        ~finally:(fun () ->
          Router.shutdown rt;
          Domain.join rrunner;
          (try Unix.unlink rsock with Unix.Unix_error _ | Sys_error _ -> ());
          List.iter
            (fun (p, srv, d) ->
              Server.shutdown srv;
              Domain.join d;
              (try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ()))
            backs)
        (fun () ->
          let r = f rsock in
          (r, queue_wait ()))
  in
  let join_gens gen =
    let lat_m = Mutex.create () in
    let lats = ref [] in
    let t0 = Unix.gettimeofday () in
    let threads =
      List.init gens (fun g ->
          Thread.create
            (fun g ->
              let mine = gen g in
              Mutex.protect lat_m (fun () -> lats := mine @ !lats))
            g)
    in
    List.iter Thread.join threads;
    (Unix.gettimeofday () -. t0, !lats)
  in
  (* -- phase 1: blocking closed-loop clients ------------------------ *)
  let blocking rsock =
    join_gens (fun g ->
        let c = conn_retry rsock 150 in
        let mine = ref [] in
        let timed req check =
          let t0 = Unix.gettimeofday () in
          let resp = Client.rpc c req in
          mine := (Unix.gettimeofday () -. t0) :: !mine;
          if not (check resp) then Atomic.incr errors
        in
        for s = 0 to per - 1 do
          let src, reference = prog ((g * per) + s) in
          timed (Protocol.Load src) (function Protocol.Loaded _ -> true | _ -> false);
          timed run_req (function
            | Protocol.Model { complete; text; _ } -> complete && text = reference
            | _ -> false)
        done;
        Client.close c;
        !mine)
  in
  (* -- phase 2: open-loop pipelined generators ---------------------- *)
  let pipelined ~session_rate rsock =
    join_gens (fun g ->
        let r = Client.resilient ~connect_timeout:2.0 (Client.Uds rsock) in
        let p = Client.Pipeline.create r in
        let pending = Hashtbl.create 256 in
        let mine = ref [] in
        let complete (rid, resp) =
          match Hashtbl.find_opt pending rid with
          | None -> Atomic.incr errors
          | Some (is_run, reference, t0) ->
            Hashtbl.remove pending rid;
            (* sojourn time: submit to completion, queueing included —
               the honest latency of an open-loop system *)
            mine := (Unix.gettimeofday () -. t0) :: !mine;
            let ok =
              if is_run then
                match resp with
                | Protocol.Model { complete; text; _ } -> complete && text = reference
                | _ -> false
              else match resp with Protocol.Loaded _ -> true | _ -> false
            in
            if not ok then Atomic.incr errors
        in
        let rng = Random.State.make [| 0x919; g |] in
        let rate = session_rate /. float_of_int gens in
        let next = ref (Unix.gettimeofday ()) in
        for s = 0 to per - 1 do
          let u = Random.State.float rng 1.0 in
          next := !next +. (-.log (1.0 -. u) /. rate);
          while Client.Pipeline.inflight p >= inflight_cap do
            complete (Client.Pipeline.await p)
          done;
          let now = Unix.gettimeofday () in
          if !next > now then Unix.sleepf (!next -. now);
          let src, reference = prog ((g * per) + s) in
          let t = Unix.gettimeofday () in
          Hashtbl.replace pending
            (Client.Pipeline.submit p (Protocol.Load src))
            (false, reference, t);
          Hashtbl.replace pending (Client.Pipeline.submit p run_req) (true, reference, t)
        done;
        List.iter complete (Client.Pipeline.drain p);
        Client.Pipeline.close p;
        !mine)
  in
  let (wall_b, lats_b), _ = with_fleet "blk" blocking in
  let n_b = List.length lats_b in
  let rps_b = if wall_b > 0.0 then float_of_int n_b /. wall_b else 0.0 in
  (* provision arrivals at 2x the blocking throughput: the generator
     does not slow down for the server, only the in-flight cap bounds
     admission, so the fleet runs saturated and queueing shows up *)
  let session_rate = rps_b in
  let (wall_p, lats_p), (qw_p50, qw_p99) = with_fleet "pip" (pipelined ~session_rate) in
  let n_p = List.length lats_p in
  let rps_p = if wall_p > 0.0 then float_of_int n_p /. wall_p else 0.0 in
  let pct lats p =
    let a = Array.of_list lats in
    Array.sort compare a;
    let n = Array.length a in
    if n = 0 then 0 else int_of_float (a.(min (n - 1) (int_of_float (p *. float_of_int n))) *. 1e6)
  in
  record ~exp:"E19" ~n:sessions ~wall:(wall_b +. wall_p)
    [ ("requests", n_b + n_p); ("errors", Atomic.get errors); ("backends", backends_n);
      ("generators", gens); ("inflight_cap", inflight_cap);
      ("blocking_rps", int_of_float rps_b); ("pipelined_rps", int_of_float rps_p);
      ("blocking_p50_us", pct lats_b 0.50); ("blocking_p99_us", pct lats_b 0.99);
      ("pipelined_p50_us", pct lats_p 0.50); ("pipelined_p99_us", pct lats_p 0.99);
      ("queue_wait_p50_us", qw_p50); ("queue_wait_p99_us", qw_p99);
      ("speedup_pct", int_of_float ((rps_p -. rps_b) /. Float.max rps_b 1.0 *. 100.0)) ];
  Harness.table
    ~title:
      "E19  Scale-out serving: open-loop load through gbc-router (2 backends x 2 \
       workers), blocking vs pipelined clients, models checked against single-shot"
    ~header:
      [ "sessions"; "errors"; "blk req/s"; "pip req/s"; "blk p99(us)"; "pip p99(us)";
        "qwait p99(us)" ]
    [ [ string_of_int sessions; string_of_int (Atomic.get errors);
        Printf.sprintf "%.0f" rps_b; Printf.sprintf "%.0f" rps_p;
        string_of_int (pct lats_b 0.99); string_of_int (pct lats_p 0.99);
        string_of_int qw_p99 ] ];
  (rps_b, rps_p)

(* ------------------------------------------------------------------ *)
(* E20 — the big-EDB tier: flat vs boxed million-edge loads            *)
(* ------------------------------------------------------------------ *)

(* The storage-layout claim: columnar flat-int relations make the
   million-edge corpus a systems workload rather than an allocation
   stress test.  Three measurements, all on the generated graph
   corpora behind Prim / Kruskal / Dijkstra (seeds recorded in every
   point):

   1. Bulk-load allocation — the same corpus loaded twice through
      [Graph_gen.load_big], once with flat storage disabled (boxed
      rows: a tuple plus a Value box per field) and once enabled.
      The gate asserts flat is >= 1.5x better on minor words per
      fact; per-predicate cardinalities and distinct counts must
      agree between the two representations before any point is
      recorded.

   2. Snapshot round-trip at the tier — the flat database written
      with the v2 cell-blob codec and restored, against the same
      data written v1 (tagged values) and restored; plus the
      session-fork primitive ([Database.copy]) timed on the
      million-fact database.

   3. The programs themselves at a sub-tier the engines settle in
      bench time — Prim / Kruskal / Dijkstra through the staged
      engine seeded via [?db], byte-identical models required
      between the boxed and flat runs. *)

let e20_seed = 42

let e20 () =
  let nodes, edges, grid = if smoke then (2_000, 20_000, 100) else (100_000, 1_000_000, 707) in
  let saved_threshold = Relation.flat_threshold () in
  let set_flat flat = Relation.set_flat_threshold (if flat then Some 1024 else None) in
  Fun.protect ~finally:(fun () -> Relation.set_flat_threshold saved_threshold) @@ fun () ->
  (* -- 1: bulk-load allocation, boxed vs flat ----------------------- *)
  let corpora =
    [ ("prim", `Power, false); ("kruskal", `Road, false); ("dijkstra", `Power, true) ]
  in
  let worst_ratio = ref infinity in
  let big_db = ref None in
  let load_rows =
    List.map
      (fun (name, kind, directed) ->
        let g =
          match kind with
          | `Power -> Graph_gen.power_law ~seed:e20_seed ~nodes ~edges
          | `Road -> Graph_gen.road_network ~seed:e20_seed ~width:grid ~height:grid
        in
        let measure flat =
          set_flat flat;
          Gc.compact ();
          let w0 = Gc.minor_words () in
          let t0 = Unix.gettimeofday () in
          let db = Database.create () in
          Graph_gen.load_big ~directed db g;
          Graph_gen.load_big_nodes db g;
          let wall = Unix.gettimeofday () -. t0 in
          (db, wall, Gc.minor_words () -. w0)
        in
        let db_b, wall_b, dw_b = measure false in
        let db_f, wall_f, dw_f = measure true in
        let facts = Database.cardinal db_b in
        (* representation must be invisible: same cardinalities, same
           per-column statistics (full byte-identity is the bigedb
           smoke test's job — at 10^6+ facts the canonical printer
           would dominate the bench) *)
        let stats db =
          List.map
            (fun p ->
              let rel = Option.get (Database.find db p) in
              (p, Relation.cardinal rel, Relation.distinct_counts rel))
            (Database.preds db)
        in
        if Database.cardinal db_f <> facts || stats db_b <> stats db_f then begin
          Printf.eprintf "E20: %s: flat load disagrees with boxed load\n" name;
          exit 1
        end;
        let wpf_b = dw_b /. float_of_int facts in
        let wpf_f = dw_f /. float_of_int facts in
        let ratio = wpf_b /. Float.max wpf_f 0.01 in
        worst_ratio := Float.min !worst_ratio ratio;
        if name = "dijkstra" then big_db := Some db_f;
        record ~exp:"E20" ~n:facts ~wall:wall_f
          [ ("seed", e20_seed); ("nodes", nodes); ("graph_edges", Graph_gen.big_edges g);
            ("directed", if directed then 1 else 0);
            ("boxed_minor_words", int_of_float dw_b);
            ("flat_minor_words", int_of_float dw_f);
            ("boxed_words_per_fact_x10", int_of_float (wpf_b *. 10.0));
            ("flat_words_per_fact_x10", int_of_float (wpf_f *. 10.0));
            ("improvement_x10", int_of_float (ratio *. 10.0));
            ("boxed_load_us", int_of_float (wall_b *. 1e6));
            ("flat_load_us", int_of_float (wall_f *. 1e6));
            ("top_heap_words", Harness.top_heap_words ()) ];
        [ name; string_of_int facts; Harness.sec wall_b; Harness.sec wall_f;
          Printf.sprintf "%.1f" wpf_b; Printf.sprintf "%.1f" wpf_f;
          Printf.sprintf "%.0fx" ratio ])
      corpora
  in
  Harness.table
    ~title:
      (Printf.sprintf
         "E20  Big-EDB bulk loads (%d-node / %d-edge power-law, %dx%d road): boxed vs \
          flat relations, minor words per loaded fact"
         nodes edges grid grid)
    ~header:[ "corpus"; "facts"; "boxed(s)"; "flat(s)"; "boxed w/f"; "flat w/f"; "gain" ]
    load_rows;
  (* -- 2: snapshot round-trip and session fork at the tier ---------- *)
  let db = Option.get !big_db in
  let facts = Database.cardinal db in
  set_flat true;
  let buf = Buffer.create (1 lsl 20) in
  Db_snapshot.write buf db;
  let v2 = Buffer.contents buf in
  let (db2, _), t_restore = Harness.time (fun () -> Db_snapshot.read v2 0) in
  let buf = Buffer.create (1 lsl 20) in
  Db_snapshot.write_v1 buf db;
  let v1 = Buffer.contents buf in
  let (db1, _), t_restore_v1 = Harness.time (fun () -> Db_snapshot.read v1 0) in
  if Database.cardinal db2 <> facts || Database.cardinal db1 <> facts then begin
    Printf.eprintf "E20: snapshot round-trip lost facts\n";
    exit 1
  end;
  let _, t_fork = Harness.time (fun () -> Database.copy db) in
  record ~exp:"E20" ~n:facts ~wall:t_restore
    [ ("seed", e20_seed); ("snapshot_v2_bytes", String.length v2);
      ("snapshot_v1_bytes", String.length v1);
      ("restore_v2_us", int_of_float (t_restore *. 1e6));
      ("restore_v1_us", int_of_float (t_restore_v1 *. 1e6));
      ("fork_us", int_of_float (t_fork *. 1e6));
      ("top_heap_words", Harness.top_heap_words ()) ];
  Harness.table
    ~title:"E20  Snapshot round-trip of the big fact base: v2 (flat cell blobs) vs v1 \
            (tagged values), and the session-fork primitive"
    ~header:[ "facts"; "v2 bytes"; "v1 bytes"; "v2 restore(s)"; "v1 restore(s)"; "fork(s)" ]
    [ [ string_of_int facts; string_of_int (String.length v2); string_of_int (String.length v1);
        Harness.sec t_restore; Harness.sec t_restore_v1; Printf.sprintf "%.6f" t_fork ] ];
  (* -- 3: the greedy exemplars over a corpus the engines settle ----- *)
  (* Per-program sub-tier: declarative Kruskal is O(e.n) (claim C4), so
     it gets a smaller corpus than the near-linear Prim/Dijkstra. *)
  let engine_rows =
    List.map
      (fun (name, source, directed, (sub_nodes, sub_edges)) ->
        let sub_nodes, sub_edges =
          if smoke then (500, 2_000) else (sub_nodes, sub_edges)
        in
        let sub = Graph_gen.power_law ~seed:e20_seed ~nodes:sub_nodes ~edges:sub_edges in
        let prog = Parser.parse_program source in
        let run flat =
          set_flat flat;
          let db = Database.create () in
          Graph_gen.load_big ~directed db sub;
          Graph_gen.load_big_nodes db sub;
          let t0 = Unix.gettimeofday () in
          let model, _ = Stage_engine.run ~db prog in
          (Unix.gettimeofday () -. t0, Format.asprintf "%a" Database.pp model)
        in
        let wall_b, model_b = run false in
        let wall_f, model_f = run true in
        if not (String.equal model_b model_f) then begin
          Printf.eprintf "E20: %s: flat model differs from boxed\n" name;
          exit 1
        end;
        record ~exp:"E20" ~n:sub_edges ~wall:wall_f
          [ ("seed", e20_seed); ("sub_nodes", sub_nodes); ("sub_edges", sub_edges);
            ("engine_boxed_us", int_of_float (wall_b *. 1e6));
            ("engine_flat_us", int_of_float (wall_f *. 1e6)) ];
        [ name; string_of_int sub_edges; Harness.sec wall_b; Harness.sec wall_f;
          Harness.ratio wall_b wall_f ])
      [ ("prim", Prim.source ~root:0, false, (4_096, 32_768));
        ("kruskal", Kruskal.source, false, (1_024, 4_096));
        ("dijkstra", Dijkstra.source ~root:0, true, (4_096, 32_768)) ]
  in
  Harness.table
    ~title:
      "E20  Prim / Kruskal / Dijkstra on the generated corpus (staged engine, \
       byte-identical models boxed vs flat)"
    ~header:[ "program"; "edges"; "boxed(s)"; "flat(s)"; "speedup" ]
    engine_rows;
  !worst_ratio

(* ------------------------------------------------------------------ *)
(* A1 — (R,Q,L) vs recompute-least (reference engine)                  *)
(* ------------------------------------------------------------------ *)

let a1 () =
  let sizes = scale [ 64; 128; 256; 512 ] in
  let rows, ref_pts, staged_pts =
    List.fold_left
      (fun (rows, rp, sp) n ->
        let g = Graph_gen.random_connected ~seed:(800 + n) ~nodes:n ~extra_edges:(7 * n) in
        let _, t_ref = Harness.time ~repeat:1 (fun () -> Prim.run Runner.Reference g) in
        let _, t_staged = Harness.time (fun () -> Prim.run Runner.Staged g) in
        record ~exp:"A1" ~n ~wall:t_staged (counters_of (Prim.program ~root:0 g));
        let fn = float_of_int n in
        ( [ string_of_int n; Harness.sec t_ref; Harness.sec t_staged;
            Harness.ratio t_ref t_staged ]
          :: rows,
          (fn, t_ref) :: rp,
          (fn, t_staged) :: sp ))
      ([], [], []) sizes
  in
  Harness.table
    ~title:
      "A1  Ablation: Section-6 (R,Q,L) priority queues vs the reference engine's \
       recompute-least-per-stage (Prim, e = 8n)"
    ~header:[ "n"; "reference(s)"; "staged(s)"; "speedup" ]
    (List.rev rows);
  Printf.printf "A1 slopes: reference %s (quadratic-ish), staged %s (near-linear)\n"
    (Harness.slope (Harness.loglog_slope ref_pts))
    (Harness.slope (Harness.loglog_slope staged_pts))

(* ------------------------------------------------------------------ *)
(* A2 — congruence shadowing on/off                                    *)
(* ------------------------------------------------------------------ *)

let a2 () =
  let rows =
    List.concat_map
      (fun n ->
        let g = Graph_gen.random_connected ~seed:(900 + n) ~nodes:n ~extra_edges:(7 * n) in
        let prog = Prim.program ~root:0 g in
        List.map
          (fun (label, shadow) ->
            let (_, stats), t = Harness.time ~repeat:1 (fun () -> Stage_engine.run ~shadow prog) in
            let telemetry = Telemetry.create () in
            ignore (Stage_engine.run ~shadow ~telemetry prog);
            record ~exp:("A2_" ^ label) ~n ~wall:t (Telemetry.totals telemetry);
            [ string_of_int n; label; Harness.sec t;
              string_of_int stats.Stage_engine.max_queue;
              string_of_int stats.Stage_engine.shadowed;
              string_of_int stats.Stage_engine.stale ])
          [ ("auto", `Auto); ("off", `Off) ])
      (scale [ 256; 512; 1024 ])
  in
  Harness.table
    ~title:"A2  Ablation: r-congruence shadowing (Prim; queue high-water mark and time)"
    ~header:[ "n"; "shadow"; "time(s)"; "max queue"; "shadowed"; "stale pops" ]
    rows

(* ------------------------------------------------------------------ *)
(* A3 — least inside the clique vs post-hoc model filtering            *)
(* ------------------------------------------------------------------ *)

let a3 () =
  (* The conclusion's "naive matching" discussion: without pushing the
     extremum into the recursion one must enumerate choice models and
     filter afterwards — exponentially many; with least inside, one
     greedy run suffices. *)
  let rows =
    List.map
      (fun n_arcs ->
        let arcs = matching_arcs (37 * n_arcs) n_arcs in
        let greedy_src = Matching.source in
        let naive_src =
          "matching(nil, nil, 0, 0).\n\
           matching(X, Y, C, I) <- next(I), g(X, Y, C), choice(Y, X), choice(X, Y).\n"
        in
        let facts =
          List.map (fun (x, y, c) -> Ast.fact "g" [ Value.Int x; Value.Int y; Value.Int c ]) arcs
        in
        let greedy_prog = facts @ Parser.parse_program greedy_src in
        let naive_prog = facts @ Parser.parse_program naive_src in
        let _, t_greedy = Harness.time ~repeat:1 (fun () -> Choice_fixpoint.model greedy_prog) in
        let models, t_enum =
          Harness.time ~repeat:1 (fun () ->
              Choice_fixpoint.enumerate ~max_models:100_000 naive_prog)
        in
        [ string_of_int n_arcs; Harness.sec t_greedy; string_of_int (List.length models);
          Harness.sec t_enum ])
      (scale [ 3; 4; 5; 6 ])
  in
  Harness.table
    ~title:
      "A3  Ablation: least pushed into the clique (one greedy run) vs enumerating all \
       choice models and filtering post hoc (the conclusion's naive matching)"
    ~header:[ "arcs"; "greedy(s)"; "models to filter"; "enumerate(s)" ]
    rows

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment table       *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  let prim_g = Graph_gen.random_connected ~seed:1 ~nodes:128 ~extra_edges:896 in
  let sort_items = List.init 1024 (fun i -> (Printf.sprintf "x%d" i, (i * 7919) mod 65537)) in
  let match_arcs = matching_arcs 11 1024 in
  let kruskal_g = Graph_gen.random_connected ~seed:2 ~nodes:96 ~extra_edges:288 in
  let tsp_g = Graph_gen.complete ~seed:3 ~nodes:48 in
  let huff_letters = Text_gen.zipf ~seed:4 ~letters:48 in
  let ex1_prog =
    Assignment.random_takes ~seed:5 ~students:100 ~courses:100 ~enrollments:400
    @ Parser.parse_program Assignment.example1_source
  in
  let stable_prog = Prim.program ~root:0 (Graph_gen.random_connected ~seed:6 ~nodes:8 ~extra_edges:8) in
  let stable_model = Choice_fixpoint.model stable_prog in
  let check_prog = Parser.parse_program (Huffman.source ^ "letter(a, 1).") in
  let dij_g = Graph_gen.random_connected ~seed:7 ~nodes:256 ~extra_edges:1792 in
  let tests =
    Test.make_grouped ~name:"gbc"
      [ Test.make ~name:"E1:prim/staged/n=128"
          (Staged.stage (fun () -> Prim.run Runner.Staged prim_g));
        Test.make ~name:"E2:sort/staged/n=1024"
          (Staged.stage (fun () -> Sorting.run Runner.Staged sort_items));
        Test.make ~name:"E3:matching/staged/e=1024"
          (Staged.stage (fun () -> Matching.run Runner.Staged match_arcs));
        Test.make ~name:"E4:kruskal/staged/n=96"
          (Staged.stage (fun () -> Kruskal.run Runner.Staged kruskal_g));
        Test.make ~name:"E5:tsp/staged/n=48"
          (Staged.stage (fun () -> Tsp.run Runner.Staged tsp_g));
        Test.make ~name:"E6:huffman/staged/n=48"
          (Staged.stage (fun () -> Huffman.run Runner.Staged huff_letters));
        Test.make ~name:"E7:choice/reference/400-enrollments"
          (Staged.stage (fun () -> Choice_fixpoint.model ex1_prog));
        Test.make ~name:"E8:stability-check/prim-n=8"
          (Staged.stage (fun () -> Stable.is_stable stable_prog stable_model));
        Test.make ~name:"E9:stage-analysis/huffman"
          (Staged.stage (fun () -> Stage.analyze check_prog));
        Test.make ~name:"E10:dijkstra/staged/n=256"
          (Staged.stage (fun () -> Dijkstra.run Runner.Staged dij_g)) ]
  in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.1 else 0.5))
      ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  print_newline ();
  print_endline "Bechamel micro-benchmarks (ns per run, OLS on monotonic clock)";
  Harness.hline 72;
  Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (name, result) ->
         let est =
           match Analyze.OLS.estimates result with
           | Some [ t ] -> Printf.sprintf "%12.0f ns/run" t
           | _ -> "(no estimate)"
         in
         Printf.printf "%-40s %s\n" name est)

(* Regression gate for the perf-smoke alias: smoke-size kernels sit
   around 120–260 minor words per derived fact on the current engine
   (pre-optimization they were 230–630), so 400 words/fact means the
   allocation discipline has been lost somewhere. *)
let perf_smoke_budget = 400.0

let () =
  if only_e14 then begin
    Printf.printf "Greedy by Choice — E14 (allocation kernels, interpreted vs compiled)\n";
    let worst = e14 () in
    let files = Harness.flush_bench () in
    if not (Harness.validate_bench files) then begin
      print_endline "E14: BENCH JSON malformed";
      exit 1
    end;
    Printf.printf "wrote %s\n" (String.concat ", " files);
    Printf.printf "E14: worst %.1f words/fact (budget %.0f)\n" worst perf_smoke_budget;
    if worst > perf_smoke_budget then begin
      print_endline "E14: FAILED — allocation regression";
      exit 1
    end;
    exit 0
  end;
  if only_e15 then begin
    Printf.printf "Greedy by Choice — E15 (gbcd daemon)\n";
    e15 ();
    let files = Harness.flush_bench () in
    if Harness.validate_bench files then begin
      Printf.printf "wrote %s\n" (String.concat ", " files);
      exit 0
    end
    else begin
      print_endline "E15: BENCH JSON malformed";
      exit 1
    end
  end;
  if only_e19 then begin
    Printf.printf "Greedy by Choice — E19 (scale-out serving through gbc-router)\n";
    let rps_b, rps_p = e19 () in
    let files = Harness.flush_bench () in
    if not (Harness.validate_bench files) then begin
      print_endline "E19: BENCH JSON malformed";
      exit 1
    end;
    Printf.printf "wrote %s\n" (String.concat ", " files);
    if rps_p <= rps_b then begin
      Printf.printf "E19: FAILED — pipelined %.0f req/s does not beat blocking %.0f req/s\n"
        rps_p rps_b;
      exit 1
    end;
    exit 0
  end;
  if only_e20 then begin
    Printf.printf "Greedy by Choice — E20 (big-EDB tier: flat vs boxed bulk loads)\n";
    let worst = e20 () in
    let files = Harness.flush_bench () in
    if not (Harness.validate_bench files) then begin
      print_endline "E20: BENCH JSON malformed";
      exit 1
    end;
    Printf.printf "wrote %s\n" (String.concat ", " files);
    Printf.printf "E20: worst flat-vs-boxed words/fact gain %.1fx (gate 1.5x)\n" worst;
    if worst < 1.5 then begin
      print_endline "E20: FAILED — flat representation does not clear the 1.5x gate";
      exit 1
    end;
    exit 0
  end;
  if only_e17 then begin
    Printf.printf "Greedy by Choice — E17 (incremental maintenance)\n";
    e17 ();
    let files = Harness.flush_bench () in
    if Harness.validate_bench files then begin
      Printf.printf "wrote %s\n" (String.concat ", " files);
      exit 0
    end
    else begin
      print_endline "E17: BENCH JSON malformed";
      exit 1
    end
  end;
  if only_e18 then begin
    Printf.printf "Greedy by Choice — E18 (durability: WAL overhead + recovery)\n";
    let overhead = e18 () in
    let files = Harness.flush_bench () in
    if not (Harness.validate_bench files) then begin
      print_endline "E18: BENCH JSON malformed";
      exit 1
    end;
    Printf.printf "wrote %s\n" (String.concat ", " files);
    if overhead > 20.0 then begin
      Printf.printf "E18: FAILED — WAL overhead %.1f%% exceeds the 20%% budget\n" overhead;
      exit 1
    end;
    exit 0
  end;
  if perf_smoke then begin
    Printf.printf
      "Greedy by Choice — perf smoke (E14 allocation kernels, interpreted + compiled)\n";
    let worst = e14 () in
    let files = Harness.flush_bench () in
    if not (Harness.validate_bench files) then begin
      print_endline "perf-smoke: BENCH JSON malformed";
      exit 1
    end;
    Printf.printf "perf-smoke: worst %.1f words/fact (budget %.0f)\n" worst perf_smoke_budget;
    if worst > perf_smoke_budget then begin
      print_endline "perf-smoke: FAILED — allocation regression";
      exit 1
    end;
    print_endline "perf-smoke: ok";
    exit 0
  end;
  Printf.printf "Greedy by Choice — experiment harness%s\n"
    (if smoke then " (smoke mode)" else if quick then " (quick mode)" else "");
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  e13 ();
  ignore (e14 ());
  e15 ();
  e16 ();
  e17 ();
  ignore (e18 ());
  ignore (e19 ());
  ignore (e20 ());
  a1 ();
  a2 ();
  a3 ();
  if not smoke then bechamel_suite ();
  let files = Harness.flush_bench () in
  print_newline ();
  Printf.printf "wrote %d BENCH_*.json file(s): %s\n" (List.length files)
    (String.concat ", " files);
  if smoke then
    if Harness.validate_bench files then print_endline "bench-smoke: all JSON well-formed"
    else begin
      print_endline "bench-smoke: FAILED";
      exit 1
    end;
  print_endline "done."
