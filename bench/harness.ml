(* Timing, slope fitting and table rendering for the experiment
   harness.  Wall-clock times; each point is the best of [repeat]
   runs so that one-off GC pauses do not distort the scaling fit. *)

let time ?(repeat = 2) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to repeat do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

(* Least-squares slope of log2(y) against log2(x): the empirical
   scaling exponent.  [O(n)] gives ~1, [O(n^2)] ~2; [O(n log n)]
   lands slightly above 1. *)
let loglog_slope points =
  let points =
    List.filter (fun (x, y) -> x > 0.0 && y > 0.0) points
    |> List.map (fun (x, y) -> (log x /. log 2.0, log y /. log 2.0))
  in
  let n = float_of_int (List.length points) in
  if n < 2.0 then nan
  else begin
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
    ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))
  end

let hline width = print_endline (String.make width '-')

let table ~title ~header rows =
  let all = header :: rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map (fun _ -> 0) header)
      all
  in
  let render row =
    String.concat "  "
      (List.map2 (fun w cell -> Printf.sprintf "%*s" w cell) widths row)
  in
  let total = List.fold_left ( + ) (2 * (List.length header - 1)) widths in
  print_newline ();
  print_endline title;
  hline total;
  print_endline (render header);
  hline total;
  List.iter (fun row -> print_endline (render row)) rows;
  hline total

let sec t = Printf.sprintf "%.4f" t
let ratio a b = if b = 0.0 then "-" else Printf.sprintf "%.1fx" (a /. b)
let slope s = if Float.is_nan s then "-" else Printf.sprintf "%.2f" s
