(* Timing, slope fitting and table rendering for the experiment
   harness.  Wall-clock times; each point is the best of [repeat]
   runs so that one-off GC pauses do not distort the scaling fit —
   the median is kept alongside as the robust central estimate. *)

(* --repeat N raises the repetition count for every call site that
   uses the default (main.ml sets this from the command line).  Sites
   passing an explicit [~repeat] — single-run timings of expensive or
   side-effecting closures — are left alone. *)
let repeat_override : int option ref = ref None

type timing = { best_s : float; median_s : float; runs : int }

let time_stats ?repeat f =
  let repeat =
    max 1 (match repeat with Some r -> r | None -> Option.value !repeat_override ~default:2)
  in
  let samples = Array.make repeat 0.0 in
  let result = ref None in
  for i = 0 to repeat - 1 do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    samples.(i) <- Unix.gettimeofday () -. t0;
    result := Some r
  done;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let median =
    if repeat mod 2 = 1 then sorted.(repeat / 2)
    else (sorted.((repeat / 2) - 1) +. sorted.(repeat / 2)) /. 2.0
  in
  (Option.get !result, { best_s = sorted.(0); median_s = median; runs = repeat })

let time ?repeat f =
  let r, t = time_stats ?repeat f in
  (r, t.best_s)

(* Peak major-heap size since program start, in words — the resident
   footprint that the allocation experiments (E14, E20) record next to
   minor words per fact.  [Gc.quick_stat] reads the counter without
   forcing a collection, so bracketing a measurement with it is free. *)
let top_heap_words () = (Gc.quick_stat ()).Gc.top_heap_words

(* Least-squares slope of log2(y) against log2(x): the empirical
   scaling exponent.  [O(n)] gives ~1, [O(n^2)] ~2; [O(n log n)]
   lands slightly above 1. *)
let loglog_slope points =
  let points =
    List.filter (fun (x, y) -> x > 0.0 && y > 0.0) points
    |> List.map (fun (x, y) -> (log x /. log 2.0, log y /. log 2.0))
  in
  let n = float_of_int (List.length points) in
  if n < 2.0 then nan
  else begin
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
    ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))
  end

let hline width = print_endline (String.make width '-')

let table ~title ~header rows =
  let all = header :: rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map (fun _ -> 0) header)
      all
  in
  let render row =
    String.concat "  "
      (List.map2 (fun w cell -> Printf.sprintf "%*s" w cell) widths row)
  in
  let total = List.fold_left ( + ) (2 * (List.length header - 1)) widths in
  print_newline ();
  print_endline title;
  hline total;
  print_endline (render header);
  hline total;
  List.iter (fun row -> print_endline (render row)) rows;
  hline total

let sec t = Printf.sprintf "%.4f" t
let ratio a b = if b = 0.0 then "-" else Printf.sprintf "%.1fx" (a /. b)
let slope s = if Float.is_nan s then "-" else Printf.sprintf "%.2f" s

(* ------------------------------------------------------------------ *)
(* BENCH_<exp>.json — machine-readable trajectory of the experiment    *)
(* tables.  One file per experiment: the id, and one point per size    *)
(* with the wall-clock time and a telemetry counter snapshot.  The     *)
(* emitter below is hand-rolled (no JSON dependency in the image);     *)
(* the minimal parser exists so the smoke run can prove the files it   *)
(* just wrote are well-formed.                                         *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.0f" f)
    else Buffer.add_string buf (Printf.sprintf "%.9g" f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (json_escape s);
    Buffer.add_char buf '"'
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ", ";
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        emit buf (Str k);
        Buffer.add_string buf ": ";
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

exception Parse of string

(* Recursive-descent JSON parser, just enough to round-trip what the
   emitter (and Telemetry.to_json) produce. *)
let parse_json src =
  let n = String.length src in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub src !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let code = int_of_string ("0x" ^ String.sub src !pos 4) in
          pos := !pos + 4;
          (* ASCII only; good enough for counter labels *)
          if code < 128 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_char buf '?';
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when numchar c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub src start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); Arr [])
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "empty input"
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error "trailing garbage" else Ok v
  | exception Parse msg -> Error msg

(* Record store: experiments push (n, wall, median, counters) points;
   [flush_bench] writes one BENCH_<exp>.json per experiment and
   returns the paths.  The point keys are stable — always "n",
   "wall_s", "wall_median_s", "counters", in that order — so the
   trajectory files diff cleanly across runs.  When a call site has no
   separate median (single-run timings), the median equals the wall
   time. *)

let bench_points : (string, (int * float * float * (string * int) list) list) Hashtbl.t =
  Hashtbl.create 16

let bench_order : string list ref = ref []

let record ~exp ~n ~wall ?median counters =
  let median = Option.value median ~default:wall in
  if not (Hashtbl.mem bench_points exp) then bench_order := exp :: !bench_order;
  let prev = try Hashtbl.find bench_points exp with Not_found -> [] in
  Hashtbl.replace bench_points exp ((n, wall, median, counters) :: prev)

let flush_bench () =
  List.rev_map
    (fun exp ->
      let points = List.rev (Hashtbl.find bench_points exp) in
      let doc =
        Obj
          [ ("experiment", Str exp);
            (* The host's parallelism budget: scaling points (E16) and
               latency points (E15/E17) are meaningless without it. *)
            ( "recommended_domain_count",
              Num (float_of_int (Domain.recommended_domain_count ())) );
            ( "points",
              Arr
                (List.map
                   (fun (n, wall, median, counters) ->
                     Obj
                       [ ("n", Num (float_of_int n));
                         ("wall_s", Num wall);
                         ("wall_median_s", Num median);
                         ( "counters",
                           Obj (List.map (fun (k, v) -> (k, Num (float_of_int v))) counters)
                         ) ])
                   points) ) ]
      in
      let path = Printf.sprintf "BENCH_%s.json" exp in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (to_string doc);
          output_char oc '\n');
      path)
    !bench_order

(* Smoke validation: every written file must re-parse and carry at
   least one point with the required fields. *)
let validate_bench paths =
  List.for_all
    (fun path ->
      let ic = open_in path in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match parse_json src with
      | Error msg ->
        Printf.eprintf "bench-smoke: %s: %s\n" path msg;
        false
      | Ok (Obj fields) -> (
        match (List.assoc_opt "experiment" fields, List.assoc_opt "points" fields) with
        | Some (Str _), Some (Arr (_ :: _ as points)) ->
          (* [wall_median_s] is required too: [record] substitutes the
             wall time when a site has no separate median (single-run
             timings, --repeat 1), so before/after rows are always
             comparable on the same key. *)
          let point_ok = function
            | Obj pf ->
              List.mem_assoc "n" pf && List.mem_assoc "wall_s" pf
              && List.mem_assoc "wall_median_s" pf
              && List.mem_assoc "counters" pf
            | _ -> false
          in
          if List.for_all point_ok points then true
          else begin
            Printf.eprintf "bench-smoke: %s: malformed point\n" path;
            false
          end
        | _ ->
          Printf.eprintf "bench-smoke: %s: missing experiment/points\n" path;
          false)
      | Ok _ ->
        Printf.eprintf "bench-smoke: %s: not an object\n" path;
        false)
    paths
